// Package core implements CORGI's primary contribution: generation of
// customizable, robust geo-obfuscation matrices (Sec. 4) and the
// server/user control flow around them (Sec. 5).
//
// The pipeline is:
//
//	Instance (cells + priors + targets)
//	   -> linear program of Equ. (8)  [graph-approximated constraints, Sec. 4.2]
//	   -> robust iteration of Algorithm 1 [reserved privacy budget, Sec. 4.4]
//	   -> obf.Matrix, customized user-side by pruning (Sec. 4.3) and
//	      precision reduction (Sec. 4.5).
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"corgi/internal/budget"
	"corgi/internal/geo"
	"corgi/internal/graphx"
	"corgi/internal/hexgrid"
	"corgi/internal/lp"
	"corgi/internal/obf"
)

// Instance is one obfuscation-matrix generation problem: a finite location
// set V (leaf hex cells), a prior over it, and the target locations Q whose
// travel-cost estimation error defines the quality loss (Equ. 6/7).
type Instance struct {
	sys     *hexgrid.System
	level   int // hex-lattice level of the cells (0 = leaves)
	cells   []hexgrid.Coord
	priors  []float64 // normalized
	graph   *graphx.Graph
	centers []geo.LatLng
	cost    [][]float64 // c[k][l] = E_q |d(k,q)-d(l,q)|  (Equ. 3/6)
	dist    [][]float64 // pairwise haversine center distances
}

// NewInstance builds an instance over the given level-0 cells of sys.
// priors must be non-negative with positive sum (normalized internally);
// targets with probabilities targetProbs (normalized likewise) define the
// quality-loss objective. mode selects the graph-approximation weighting.
func NewInstance(sys *hexgrid.System, cells []hexgrid.Coord, priors []float64,
	targets []geo.LatLng, targetProbs []float64, mode graphx.WeightMode) (*Instance, error) {
	return NewInstanceLevel(sys, 0, cells, priors, targets, targetProbs, mode)
}

// NewInstanceLevel is NewInstance over cells of an arbitrary lattice level
// (used when generating a matrix directly at a coarser precision level, the
// "matrix recalculation" alternative of Sec. 6.2.6).
func NewInstanceLevel(sys *hexgrid.System, level int, cells []hexgrid.Coord, priors []float64,
	targets []geo.LatLng, targetProbs []float64, mode graphx.WeightMode) (*Instance, error) {
	k := len(cells)
	if k < 2 {
		return nil, fmt.Errorf("core: need at least 2 cells, got %d", k)
	}
	if len(priors) != k {
		return nil, fmt.Errorf("core: %d priors for %d cells", len(priors), k)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: need at least one target location")
	}
	if len(targetProbs) != len(targets) {
		return nil, fmt.Errorf("core: %d target probs for %d targets", len(targetProbs), len(targets))
	}
	pr, err := normalize(priors)
	if err != nil {
		return nil, fmt.Errorf("core: priors: %w", err)
	}
	tp, err := normalize(targetProbs)
	if err != nil {
		return nil, fmt.Errorf("core: target probs: %w", err)
	}
	g, err := graphx.Build(cells, func(a, b hexgrid.Coord) float64 {
		return sys.CenterDistance(level, a, b)
	}, mode)
	if err != nil {
		return nil, err
	}
	if !g.Connected() {
		return nil, fmt.Errorf("core: cell set is not connected under the 12-neighbor graph")
	}
	inst := &Instance{
		sys:     sys,
		level:   level,
		cells:   append([]hexgrid.Coord(nil), cells...),
		priors:  pr,
		graph:   g,
		centers: make([]geo.LatLng, k),
	}
	for i, c := range cells {
		inst.centers[i] = sys.Center(level, c)
	}
	inst.dist = make([][]float64, k)
	for i := range inst.dist {
		inst.dist[i] = make([]float64, k)
		for j := range inst.dist[i] {
			if i != j {
				inst.dist[i][j] = geo.Haversine(inst.centers[i], inst.centers[j])
			}
		}
	}
	// Cost matrix: c[k][l] = sum_q Pr(q) * |d(k,q) - d(l,q)|.
	dToTarget := make([][]float64, k)
	for i := range dToTarget {
		dToTarget[i] = make([]float64, len(targets))
		for q, tgt := range targets {
			dToTarget[i][q] = geo.Haversine(inst.centers[i], tgt)
		}
	}
	inst.cost = make([][]float64, k)
	for i := range inst.cost {
		inst.cost[i] = make([]float64, k)
		for j := range inst.cost[i] {
			s := 0.0
			for q := range targets {
				s += tp[q] * math.Abs(dToTarget[i][q]-dToTarget[j][q])
			}
			inst.cost[i][j] = s
		}
	}
	return inst, nil
}

func normalize(v []float64) ([]float64, error) {
	sum := 0.0
	for i, x := range v {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("entry %d is %v", i, x)
		}
		sum += x
	}
	if sum <= 0 {
		return nil, fmt.Errorf("sum is %v, want positive", sum)
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / sum
	}
	return out, nil
}

// K returns the number of locations.
func (inst *Instance) K() int { return len(inst.cells) }

// Cells returns the cell set (do not modify).
func (inst *Instance) Cells() []hexgrid.Coord { return inst.cells }

// Centers returns the geographic centers (do not modify).
func (inst *Instance) Centers() []geo.LatLng { return inst.centers }

// Priors returns the normalized priors (do not modify).
func (inst *Instance) Priors() []float64 { return inst.priors }

// Graph returns the approximation graph.
func (inst *Instance) Graph() *graphx.Graph { return inst.graph }

// Dist returns the haversine distance between cells i and j.
func (inst *Instance) Dist(i, j int) float64 { return inst.dist[i][j] }

// Cost returns the expected travel-cost estimation error of reporting l for k.
func (inst *Instance) Cost(k, l int) float64 { return inst.cost[k][l] }

// QualityLoss evaluates Equ. (7) for a matrix over this instance's cells.
func (inst *Instance) QualityLoss(m *obf.Matrix) (float64, error) {
	k := inst.K()
	if m.Dim() != k {
		return 0, fmt.Errorf("core: matrix dim %d vs %d cells", m.Dim(), k)
	}
	loss := 0.0
	for i := 0; i < k; i++ {
		row := m.Row(i)
		ci := inst.cost[i]
		s := 0.0
		for j := 0; j < k; j++ {
			s += row[j] * ci[j]
		}
		loss += inst.priors[i] * s
	}
	return loss, nil
}

// NeighborPairs returns the directed Geo-Ind constraint pairs under the
// graph approximation: both directions of every graph edge, carrying the
// edge's (possibly mode-scaled) weight as the budget distance.
func (inst *Instance) NeighborPairs() []obf.Pair {
	edges := inst.graph.Edges()
	out := make([]obf.Pair, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, obf.Pair{I: e.From, J: e.To, Dist: e.W})
		out = append(out, obf.Pair{I: e.To, J: e.From, Dist: e.W})
	}
	return out
}

// AllPairs returns every directed pair with true haversine distances: the
// un-approximated constraint set of Equ. (4), used for the Fig. 10
// comparison and for strict audits.
func (inst *Instance) AllPairs() []obf.Pair {
	k := inst.K()
	out := make([]obf.Pair, 0, k*(k-1))
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				out = append(out, obf.Pair{I: i, J: j, Dist: inst.dist[i][j]})
			}
		}
	}
	return out
}

// SolverKind selects the LP strategy.
type SolverKind int

// Solver strategies.
const (
	// SolverAuto uses the direct sparse simplex for small instances and
	// Dantzig-Wolfe decomposition (see dw.go) beyond directSolveLimit cells.
	SolverAuto SolverKind = iota
	// SolverDirect always builds and solves the monolithic LP.
	SolverDirect
	// SolverDW always uses column generation.
	SolverDW
)

// directSolveLimit is the largest K routed to the monolithic simplex under
// SolverAuto; bigger instances use the decomposition, whose bases stay
// small and well-conditioned.
const directSolveLimit = 12

// Params tunes matrix generation.
type Params struct {
	// Epsilon is the Geo-Ind privacy budget in km^-1 (paper: 15–20).
	Epsilon float64
	// Delta is the number of prunable locations the matrix must survive
	// (delta-prunable robustness, Definition 4.2). Zero reproduces the
	// non-robust baseline.
	Delta int
	// Iterations is t in Algorithm 1 (paper: converges in ~4, uses 10).
	Iterations int
	// UseGraphApprox selects the Sec. 4.2 constraint reduction; when false
	// the full O(K^3) pairwise constraint set is used (Fig. 10 baseline).
	UseGraphApprox bool
	// BudgetVariant selects the reserved-budget approximation form.
	BudgetVariant budget.Variant
	// LiteralBudget uses the paper's literal Equ. (14) (max over all prune
	// sets, including those deleting the pair itself) instead of the
	// corrected pair-surviving form; see budget.ApproxPair. Literal form
	// over-reserves and can make Equ. (16) infeasible.
	LiteralBudget bool
	// UncappedBudget disables the eps'_{i,j} <= eps cap. By default the
	// reserved budget is capped so the tightened multiplier stays >= 1,
	// which keeps Equ. (16) feasible (the uniform matrix always satisfies
	// it) at the cost of a best-effort (rather than absolute) delta-prunable
	// guarantee for the affected pairs — matching the residual violations
	// the paper itself reports for its robust matrices (Sec. 6.2.4).
	UncappedBudget bool
	// Solver picks the LP strategy (default SolverAuto).
	Solver SolverKind
	// LP carries solver options; nil uses defaults with perturbation on.
	LP *lp.Options
	// DWRounds caps column-generation rounds (0 = default).
	DWRounds int
	// DWExact runs the column-generation tail to full optimality
	// certification instead of stopping when improvement stalls below 0.1%.
	DWExact bool
	// NoWarmStart disables carrying simplex bases between related solves
	// (Algorithm-1 iterations, DW master rounds and pricing solves). Every
	// solve then starts from the crash basis. Exists to benchmark the
	// warm-start speedup; production leaves it false.
	NoWarmStart bool
}

func (p Params) validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("core: epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Delta < 0 {
		return fmt.Errorf("core: delta must be >= 0, got %d", p.Delta)
	}
	if p.Delta > 0 && p.Iterations < 1 {
		return fmt.Errorf("core: robust generation needs >= 1 iteration, got %d", p.Iterations)
	}
	return nil
}

func (p Params) lpOptions() *lp.Options {
	if p.LP != nil {
		return p.LP
	}
	return &lp.Options{Perturb: true}
}

// Result is the outcome of matrix generation.
type Result struct {
	Matrix *obf.Matrix
	// QualityLoss is Delta(Z) of Equ. (7) for the final matrix.
	QualityLoss float64
	// Trace holds the objective value after each Algorithm-1 iteration
	// (index 0 = the initial non-robust solve), reproducing Fig. 9.
	Trace []float64
	// Constraints is the number of Geo-Ind inequality rows per LP.
	Constraints int
	// LPIterations is the total simplex pivots across all solves.
	LPIterations int
	// WarmAttempts counts LP solves that were offered a warm-start basis
	// from a related earlier solve; WarmAccepts counts those where the
	// solver verified and kept it (skipping phase 1 and most pivots).
	WarmAttempts int
	WarmAccepts  int
	// Elapsed is the wall-clock generation time.
	Elapsed time.Duration
}

// constraintPairs returns the directed pair set used for LP constraints.
func (inst *Instance) constraintPairs(useApprox bool) []obf.Pair {
	if useApprox {
		return inst.NeighborPairs()
	}
	return inst.AllPairs()
}

// solveCarry threads reusable solver state between related solves over the
// same instance (Algorithm-1 iterations): Dantzig-Wolfe generator columns
// and, for the direct solver, the previous optimal simplex basis. The
// constraint shape is identical across iterations — only coefficients move
// with the tightened multipliers — so the old basis is usually still (near-)
// feasible and the warm start lands.
type solveCarry struct {
	pool  []dwColumn
	basis []int
}

// solveStats aggregates per-solve counters surfaced in Result.
type solveStats struct {
	iters        int
	warmAttempts int
	warmAccepts  int
}

func (st *solveStats) add(o solveStats) {
	st.iters += o.iters
	st.warmAttempts += o.warmAttempts
	st.warmAccepts += o.warmAccepts
}

// solveMatrix dispatches one LP solve to the configured strategy, updating
// carry with whatever state the next related solve can reuse.
func (inst *Instance) solveMatrix(p Params, pairs []obf.Pair, mult []float64, carry *solveCarry, tightened bool) (*obf.Matrix, solveStats, error) {
	kind := p.Solver
	if kind == SolverAuto {
		if inst.K() <= directSolveLimit {
			kind = SolverDirect
		} else {
			kind = SolverDW
		}
	}
	if kind == SolverDirect {
		var st solveStats
		opts := *p.lpOptions() // copy: never mutate the caller's Options
		if !p.NoWarmStart && len(carry.basis) > 0 {
			opts.WarmBasis = carry.basis
			st.warmAttempts++
		}
		m, sol, err := inst.solveLP(pairs, mult, &opts)
		if sol != nil {
			st.iters = sol.Iterations
			if sol.Warm {
				st.warmAccepts++
			}
			if sol.Status == lp.Optimal {
				carry.basis = sol.Basis
			}
		}
		return m, st, err
	}
	m, pool, st, err := inst.solveDW(pairs, mult, &dwOptions{
		MaxRounds: p.DWRounds, Exact: p.DWExact, SubLP: p.LP,
		SeedUniform: tightened, NoWarmStart: p.NoWarmStart,
	}, carry.pool)
	carry.pool = pool
	return m, st, err
}

// solveLP builds and solves the LP of Equ. (8)/(16): minimize quality loss
// subject to row-stochasticity and the per-pair Geo-Ind constraints with
// the given multipliers mult[p] = exp((eps - eps'_p) * d_p).
func (inst *Instance) solveLP(pairs []obf.Pair, mult []float64, opts *lp.Options) (*obf.Matrix, *lp.Solution, error) {
	k := inst.K()
	nv := k * k
	prob := lp.NewProblem(nv)
	obj := make([]float64, nv)
	for i := 0; i < k; i++ {
		w := inst.priors[i]
		for j := 0; j < k; j++ {
			obj[i*k+j] = w * inst.cost[i][j]
		}
	}
	if err := prob.SetObjective(obj); err != nil {
		return nil, nil, err
	}
	// Row-stochasticity (Equ. 5).
	idx := make([]int, k)
	ones := make([]float64, k)
	for j := range ones {
		ones[j] = 1
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			idx[j] = i*k + j
		}
		if err := prob.AddConstraint(lp.EQ, 1, idx, ones); err != nil {
			return nil, nil, err
		}
	}
	// Geo-Ind rows: z[i][c] - mult * z[j][c] <= 0 for each pair and column.
	two := make([]int, 2)
	vals := make([]float64, 2)
	for pi, p := range pairs {
		m := mult[pi]
		for c := 0; c < k; c++ {
			two[0], two[1] = p.I*k+c, p.J*k+c
			vals[0], vals[1] = 1, -m
			if err := prob.AddConstraint(lp.LE, 0, two, vals); err != nil {
				return nil, nil, err
			}
		}
	}
	sol, err := lp.Solve(prob, opts)
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, sol, fmt.Errorf("core: LP %v (delta may be too large for epsilon)", sol.Status)
	}
	m := obf.NewMatrix(k)
	for i := 0; i < k; i++ {
		copy(m.Row(i), sol.X[i*k:(i+1)*k])
	}
	if err := m.NormalizeRows(1e-6); err != nil {
		return nil, sol, fmt.Errorf("core: LP solution: %w", err)
	}
	return m, sol, nil
}

// Generate produces an obfuscation matrix for the instance. With Delta == 0
// it solves the plain LP of Equ. (8) (the paper's non-robust baseline);
// with Delta > 0 it runs Algorithm 1: alternately computing the reserved
// privacy budget (Equ. 14) from the current matrix and re-solving the
// tightened LP of Equ. (16), for Params.Iterations rounds.
func (inst *Instance) Generate(p Params) (*Result, error) {
	return inst.GenerateCtx(context.Background(), p)
}

// GenerateCtx is Generate with cancellation: the context is checked before
// the initial solve and between Algorithm-1 iterations (an individual LP
// solve still runs to completion).
func (inst *Instance) GenerateCtx(ctx context.Context, p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	pairs := inst.constraintPairs(p.UseGraphApprox)
	mult := make([]float64, len(pairs))
	for i, pr := range pairs {
		mult[i] = math.Exp(p.Epsilon * pr.Dist)
	}
	res := &Result{Constraints: len(pairs) * inst.K()}
	carry := &solveCarry{}
	m, st, err := inst.solveMatrix(p, pairs, mult, carry, false)
	if err != nil {
		return nil, err
	}
	total := st
	loss, err := inst.QualityLoss(m)
	if err != nil {
		return nil, err
	}
	res.Trace = append(res.Trace, loss)

	for it := 0; it < p.Iterations && p.Delta > 0; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Reserved privacy budget from the current matrix (Equ. 14).
		for pi, pr := range pairs {
			var ep float64
			var err error
			if p.LiteralBudget {
				ep, err = budget.Approx(m.Row(pr.I), m.Row(pr.J), pr.Dist, p.Epsilon, p.Delta, p.BudgetVariant)
			} else {
				ep, err = budget.ApproxPair(m.Row(pr.I), m.Row(pr.J), pr.I, pr.J, pr.Dist, p.Epsilon, p.Delta, p.BudgetVariant)
			}
			if err != nil {
				return nil, fmt.Errorf("core: reserved budget for pair (%d,%d): %w", pr.I, pr.J, err)
			}
			if !p.UncappedBudget && ep > p.Epsilon {
				ep = p.Epsilon
			}
			mult[pi] = budget.TightenedMultiplier(p.Epsilon, ep, pr.Dist)
		}
		m2, st, err := inst.solveMatrix(p, pairs, mult, carry, true)
		if err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", it+1, err)
		}
		total.add(st)
		m = m2
		loss, err = inst.QualityLoss(m)
		if err != nil {
			return nil, err
		}
		res.Trace = append(res.Trace, loss)
	}
	res.Matrix = m
	res.QualityLoss = res.Trace[len(res.Trace)-1]
	res.LPIterations = total.iters
	res.WarmAttempts = total.warmAttempts
	res.WarmAccepts = total.warmAccepts
	res.Elapsed = time.Since(start)
	return res, nil
}

// RandomTargets picks n distinct cell centers as target locations Q with
// uniform probabilities, matching the paper's NR_TARGET protocol.
func RandomTargets(inst *Instance, n int, seed int64) ([]geo.LatLng, []float64, error) {
	if n < 1 || n > inst.K() {
		return nil, nil, fmt.Errorf("core: %d targets from %d cells", n, inst.K())
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(inst.K())[:n]
	pts := make([]geo.LatLng, n)
	probs := make([]float64, n)
	for i, idx := range perm {
		pts[i] = inst.centers[idx]
		probs[i] = 1
	}
	return pts, probs, nil
}

// RandomCellTargets picks n distinct centers from raw cells before an
// instance exists (convenience for call sites that build the instance with
// the targets).
func RandomCellTargets(sys *hexgrid.System, cells []hexgrid.Coord, n int, seed int64) ([]geo.LatLng, []float64, error) {
	if n < 1 || n > len(cells) {
		return nil, nil, fmt.Errorf("core: %d targets from %d cells", n, len(cells))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(cells))[:n]
	pts := make([]geo.LatLng, n)
	probs := make([]float64, n)
	for i, idx := range perm {
		pts[i] = sys.Center(0, cells[idx])
		probs[i] = 1
	}
	return pts, probs, nil
}
