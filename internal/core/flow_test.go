package core

import (
	"math/rand"
	"testing"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
	"corgi/internal/policy"
)

// newFlowServer builds a height-2 tree over SF with uniform priors and a
// small target set, plus a server with fast parameters.
func newFlowServer(t *testing.T) (*Server, *loctree.Tree, *loctree.Priors) {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		t.Fatal(err)
	}
	priors := loctree.UniformPriors(tree)
	leaves := tree.LevelNodes(0)
	targets := make([]geo.LatLng, 0, 10)
	probs := make([]float64, 0, 10)
	for i := 0; i < 10; i++ {
		targets = append(targets, tree.Center(leaves[i*4]))
		probs = append(probs, 1)
	}
	srv, err := NewServer(tree, priors, targets, probs, Params{
		Epsilon: 15, Iterations: 3, UseGraphApprox: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, tree, priors
}

func TestNewServerValidation(t *testing.T) {
	_, tree, priors := newFlowServer(t)
	tgt := []geo.LatLng{geo.SanFrancisco.Center()}
	if _, err := NewServer(nil, priors, tgt, []float64{1}, Params{Epsilon: 1}); err == nil {
		t.Error("nil tree must fail")
	}
	if _, err := NewServer(tree, nil, tgt, []float64{1}, Params{Epsilon: 1}); err == nil {
		t.Error("nil priors must fail")
	}
	if _, err := NewServer(tree, priors, nil, nil, Params{Epsilon: 1}); err == nil {
		t.Error("no targets must fail")
	}
	if _, err := NewServer(tree, priors, tgt, []float64{1, 2}, Params{Epsilon: 1}); err == nil {
		t.Error("mismatched probs must fail")
	}
	if _, err := NewServer(tree, priors, tgt, []float64{1}, Params{Epsilon: 0}); err == nil {
		t.Error("zero epsilon must fail")
	}
}

func TestGenerateForestLevel1(t *testing.T) {
	srv, tree, _ := newFlowServer(t)
	forest, err := srv.GenerateForest(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if forest.PrivacyLevel != 1 || forest.Delta != 2 {
		t.Errorf("forest metadata wrong: %+v", forest)
	}
	if len(forest.Entries) != 7 {
		t.Fatalf("forest has %d entries, want 7", len(forest.Entries))
	}
	for node, e := range forest.Entries {
		if e.Root != node {
			t.Errorf("entry root %v under key %v", e.Root, node)
		}
		if len(e.Leaves) != 7 {
			t.Errorf("entry %v has %d leaves", node, len(e.Leaves))
		}
		if err := e.Matrix.CheckStochastic(1e-6); err != nil {
			t.Errorf("entry %v: %v", node, err)
		}
		if rep := e.CheckGeoInd(15, 1e-6); rep.Violated != 0 {
			t.Errorf("entry %v violates %d constraints", node, rep.Violated)
		}
		if len(e.Result.Trace) != 4 { // initial + 3 iterations
			t.Errorf("entry %v trace %d", node, len(e.Result.Trace))
		}
	}
	// The leaf sets of the entries partition the tree's leaves.
	seen := map[loctree.NodeID]bool{}
	for _, e := range forest.Entries {
		for _, l := range e.Leaves {
			if seen[l] {
				t.Fatalf("leaf %v in two entries", l)
			}
			seen[l] = true
		}
	}
	if len(seen) != tree.NumLeaves() {
		t.Errorf("entries cover %d leaves, want %d", len(seen), tree.NumLeaves())
	}
}

func TestGenerateForestValidation(t *testing.T) {
	srv, _, _ := newFlowServer(t)
	if _, err := srv.GenerateForest(0, 1); err == nil {
		t.Error("privacy level 0 must fail")
	}
	if _, err := srv.GenerateForest(3, 1); err == nil {
		t.Error("privacy level above height must fail")
	}
	if _, err := srv.GenerateEntry(loctree.NodeID{Level: 1, Coord: hexgrid.Coord{Q: 99, R: 99}}, 1); err == nil {
		t.Error("foreign node must fail")
	}
	if _, err := srv.GenerateEntry(srv.Tree().LevelNodes(1)[0], -1); err == nil {
		t.Error("negative delta must fail")
	}
}

func TestGenerateEntryCaching(t *testing.T) {
	srv, tree, _ := newFlowServer(t)
	node := tree.LevelNodes(1)[0]
	e1, err := srv.GenerateEntry(node, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := srv.GenerateEntry(node, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("same request must hit the cache")
	}
	e3, err := srv.GenerateEntry(node, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e1 {
		t.Error("different delta must regenerate")
	}
}

func TestGenerateObfuscatedLocationEndToEnd(t *testing.T) {
	srv, tree, priors := newFlowServer(t)
	forest, err := srv.GenerateForest(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	real := geo.SanFrancisco.Center()
	realLeaf, _ := tree.Locate(real, 0)
	subRoot, _ := tree.AncestorAt(realLeaf, 1)
	subLeaves := tree.LeavesUnder(subRoot)

	// Attributes: mark one non-real leaf as "home" to be pruned.
	attrs := map[loctree.NodeID]policy.Attributes{}
	var homeLeaf loctree.NodeID
	for _, l := range tree.LevelNodes(0) {
		isHome := false
		if l != realLeaf && homeLeaf == (loctree.NodeID{}) {
			for _, sl := range subLeaves {
				if sl == l {
					isHome = true
					homeLeaf = l
					break
				}
			}
		}
		attrs[l] = policy.Attributes{"home": policy.Bool(isHome)}
	}
	pred, _ := policy.ParsePredicate("home != true")
	pol := policy.Policy{PrivacyLevel: 1, PrecisionLevel: 0, Preferences: []policy.Predicate{pred}}

	rng := rand.New(rand.NewSource(5))
	reportedHome := 0
	for trial := 0; trial < 200; trial++ {
		out, err := GenerateObfuscatedLocation(tree, forest, real, pol, attrs, priors, rng)
		if err != nil {
			t.Fatal(err)
		}
		if out.SubtreeRoot != subRoot {
			t.Fatalf("wrong subtree %v", out.SubtreeRoot)
		}
		if len(out.Pruned) != 1 || out.Pruned[0] != homeLeaf {
			t.Fatalf("pruned %v, want [%v]", out.Pruned, homeLeaf)
		}
		if out.Reported == homeLeaf {
			reportedHome++
		}
		if out.Reported.Level != 0 {
			t.Fatalf("reported level %d, want 0", out.Reported.Level)
		}
		if !tree.Contains(out.Reported) {
			t.Fatalf("reported foreign node %v", out.Reported)
		}
	}
	if reportedHome != 0 {
		t.Errorf("home leaf reported %d times despite pruning", reportedHome)
	}
}

func TestGenerateObfuscatedLocationPrecisionReduction(t *testing.T) {
	srv, tree, priors := newFlowServer(t)
	forest, err := srv.GenerateForest(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.Policy{PrivacyLevel: 2, PrecisionLevel: 1}
	rng := rand.New(rand.NewSource(6))
	out, err := GenerateObfuscatedLocation(tree, forest, geo.SanFrancisco.Center(), pol, nil, priors, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Reported.Level != 1 {
		t.Fatalf("reported level %d, want 1", out.Reported.Level)
	}
	if out.Matrix.Dim() != 7 {
		t.Fatalf("reduced matrix dim %d, want 7", out.Matrix.Dim())
	}
	if err := out.Matrix.CheckStochastic(1e-6); err != nil {
		t.Errorf("reduced matrix: %v", err)
	}
}

func TestGenerateObfuscatedLocationErrors(t *testing.T) {
	srv, tree, priors := newFlowServer(t)
	forest, err := srv.GenerateForest(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	real := geo.SanFrancisco.Center()

	// Bad policy.
	if _, err := GenerateObfuscatedLocation(tree, forest, real,
		policy.Policy{PrivacyLevel: 0, PrecisionLevel: 0}, nil, priors, rng); err == nil {
		t.Error("invalid policy must fail")
	}
	// Forest level mismatch.
	if _, err := GenerateObfuscatedLocation(tree, forest, real,
		policy.Policy{PrivacyLevel: 2, PrecisionLevel: 0}, nil, priors, rng); err == nil {
		t.Error("forest level mismatch must fail")
	}
	// Real location outside the region.
	if _, err := GenerateObfuscatedLocation(tree, forest, geo.LatLng{Lat: 0, Lng: 0},
		policy.Policy{PrivacyLevel: 1, PrecisionLevel: 0}, nil, priors, rng); err == nil {
		t.Error("outside location must fail")
	}
	// Preferences pruning more than delta.
	attrs := map[loctree.NodeID]policy.Attributes{}
	for _, l := range tree.LevelNodes(0) {
		attrs[l] = policy.Attributes{"popular": policy.Bool(false)}
	}
	pred, _ := policy.ParsePredicate("popular = true")
	pol := policy.Policy{PrivacyLevel: 1, PrecisionLevel: 0, Preferences: []policy.Predicate{pred}}
	if _, err := GenerateObfuscatedLocation(tree, forest, real, pol, attrs, priors, rng); err == nil {
		t.Error("pruning beyond delta must fail (Sec. 5.3)")
	}
	// Missing attributes.
	polMissing := policy.Policy{PrivacyLevel: 1, PrecisionLevel: 0,
		Preferences: []policy.Predicate{{Var: "nope", Op: policy.OpEq, Val: policy.Bool(true)}}}
	if _, err := GenerateObfuscatedLocation(tree, forest, real, polMissing, attrs, priors, rng); err == nil {
		t.Error("missing attribute must fail")
	}
}

func TestPrunedRealLocationAtPrecisionZero(t *testing.T) {
	srv, tree, priors := newFlowServer(t)
	forest, err := srv.GenerateForest(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	real := geo.SanFrancisco.Center()
	realLeaf, _ := tree.Locate(real, 0)
	attrs := map[loctree.NodeID]policy.Attributes{}
	for _, l := range tree.LevelNodes(0) {
		attrs[l] = policy.Attributes{"home": policy.Bool(l == realLeaf)}
	}
	pred, _ := policy.ParsePredicate("home != true")
	pol := policy.Policy{PrivacyLevel: 1, PrecisionLevel: 0, Preferences: []policy.Predicate{pred}}
	rng := rand.New(rand.NewSource(8))
	if _, err := GenerateObfuscatedLocation(tree, forest, real, pol, attrs, priors, rng); err == nil {
		t.Error("pruning the real leaf at precision 0 must fail loudly")
	}
}

func TestOutcomeMatrixGeoIndAfterPruneWithinDelta(t *testing.T) {
	// Pruning <= delta locations from a delta-prunable matrix must keep
	// Geo-Ind violations at (or very near) zero — the core robustness claim.
	srv, tree, _ := newFlowServer(t)
	node := tree.LevelNodes(1)[0]
	robust, err := srv.GenerateEntry(node, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := srv.GenerateEntry(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Prune 2 locations (= delta) from both and compare violation counts.
	prune := []int{1, 4}
	checkAfter := func(m *obf.Matrix) obf.ViolationReport {
		pm, keep, err := m.Prune(prune)
		if err != nil {
			t.Fatal(err)
		}
		// Remap surviving pairs.
		newIdx := map[int]int{}
		for ni, oi := range keep {
			newIdx[oi] = ni
		}
		var pairs []obf.Pair
		for _, p := range robust.Pairs {
			ni, iok := newIdx[p.I]
			nj, jok := newIdx[p.J]
			if iok && jok {
				pairs = append(pairs, obf.Pair{I: ni, J: nj, Dist: p.Dist})
			}
		}
		return pm.CheckGeoInd(pairs, 15, 1e-6)
	}
	robustRep := checkAfter(robust.Matrix)
	plainRep := checkAfter(plain.Matrix)
	if robustRep.Violated > plainRep.Violated {
		t.Errorf("robust matrix violated more than non-robust after pruning: %d vs %d",
			robustRep.Violated, plainRep.Violated)
	}
	if robustRep.Violated > robustRep.Total/20 {
		t.Errorf("delta-prunable matrix has %d/%d violations after pruning <= delta",
			robustRep.Violated, robustRep.Total)
	}
}
