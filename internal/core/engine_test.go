package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
)

func newEngineTestServer(t *testing.T, opts EngineOptions) *Server {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		t.Fatal(err)
	}
	priors := loctree.UniformPriors(tree)
	leaves := tree.LevelNodes(0)
	targets := []geo.LatLng{tree.Center(leaves[0]), tree.Center(leaves[24]), tree.Center(leaves[48])}
	srv, err := NewServerWithOptions(tree, priors, targets, []float64{1, 1, 1}, Params{
		Epsilon: 15, Iterations: 2, UseGraphApprox: true,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestForestParallelMatchesSequential checks that worker-pool generation is
// a pure scheduling change: the forests from 1 and 4 workers are identical.
func TestForestParallelMatchesSequential(t *testing.T) {
	seq := newEngineTestServer(t, EngineOptions{Workers: 1})
	par := newEngineTestServer(t, EngineOptions{Workers: 4})
	fs, err := seq.GenerateForest(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := par.GenerateForest(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Entries) != len(fs.Entries) {
		t.Fatalf("parallel forest has %d entries, sequential %d", len(fp.Entries), len(fs.Entries))
	}
	for node, es := range fs.Entries {
		ep, ok := fp.Entries[node]
		if !ok {
			t.Fatalf("parallel forest missing %v", node)
		}
		for i := 0; i < es.Matrix.Dim(); i++ {
			for j := 0; j < es.Matrix.Dim(); j++ {
				if d := math.Abs(es.Matrix.At(i, j) - ep.Matrix.At(i, j)); d > 1e-12 {
					t.Fatalf("entry %v (%d,%d) differs by %g", node, i, j, d)
				}
			}
		}
	}
}

// TestWorkerPoolParallelism drives the engine with simulated solves and
// checks 4 workers finish a fan-out at least 2x faster than 1 worker. Sleeps
// overlap regardless of core count, so this holds even on 1-CPU CI runners
// where the LP benchmarks (bench_test.go) cannot show wall-clock scaling.
func TestWorkerPoolParallelism(t *testing.T) {
	const n = 8
	const solveTime = 20 * time.Millisecond
	gen := func(ctx context.Context, key forestKey) (*ForestEntry, error) {
		time.Sleep(solveTime)
		return &ForestEntry{}, nil
	}
	keys := make([]forestKey, n)
	for i := range keys {
		keys[i] = forestKey{delta: i}
	}
	elapsed := func(workers int) time.Duration {
		en := newEngine(EngineOptions{Workers: workers, CacheBytes: 1 << 20}, gen)
		start := time.Now()
		if _, err := en.forest(context.Background(), keys); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	seq := elapsed(1)
	par := elapsed(4)
	// Ideal: 8x20ms sequential vs 2x20ms at 4 workers. Require >= 2x with
	// plenty of scheduling slack.
	if par > seq/2 {
		t.Fatalf("4 workers took %v vs %v sequential: less than 2x speedup", par, seq)
	}
}

// TestSingleflightSurvivesLeaderCancel checks a follower with a healthy
// context is not poisoned when the flight leader's context is canceled
// mid-solve: the follower retries and gets a real result.
func TestSingleflightSurvivesLeaderCancel(t *testing.T) {
	var calls atomic.Int32
	leaderSolving := make(chan struct{})
	gen := func(ctx context.Context, key forestKey) (*ForestEntry, error) {
		if calls.Add(1) == 1 {
			close(leaderSolving)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &ForestEntry{}, nil
	}
	en := newEngine(EngineOptions{Workers: 2, CacheBytes: 1 << 20}, gen)
	key := forestKey{delta: 1}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := en.entry(leaderCtx, key)
		leaderErr <- err
	}()
	<-leaderSolving
	followerRes := make(chan error, 1)
	go func() {
		e, err := en.entry(context.Background(), key)
		if err == nil && e == nil {
			err = errors.New("nil entry without error")
		}
		followerRes <- err
	}()
	// Give the follower a moment to join the flight, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader got %v, want context.Canceled", err)
	}
	if err := <-followerRes; err != nil {
		t.Fatalf("healthy follower inherited leader's fate: %v", err)
	}
}

// TestSingleflightSharesOneSolve fires concurrent identical requests and
// checks that exactly one LP solve ran per (node, delta).
func TestSingleflightSharesOneSolve(t *testing.T) {
	srv := newEngineTestServer(t, EngineOptions{Workers: 4})
	root := srv.Tree().LevelNodes(1)[0]
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = srv.GenerateEntry(root, 1)
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", c, err)
		}
	}
	if st := srv.Stats(); st.Solves != 1 {
		t.Fatalf("%d concurrent identical requests ran %d solves, want 1", callers, st.Solves)
	}
}

// TestCacheServesRepeatWithoutSolving checks the cache short-circuits a
// repeated forest request.
func TestCacheServesRepeatWithoutSolving(t *testing.T) {
	srv := newEngineTestServer(t, EngineOptions{Workers: 2})
	if _, err := srv.GenerateForest(1, 0); err != nil {
		t.Fatal(err)
	}
	solved := srv.Stats().Solves
	if _, err := srv.GenerateForest(1, 0); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Solves != solved {
		t.Fatalf("repeat request re-solved: %d -> %d", solved, st.Solves)
	}
	if st.Hits == 0 {
		t.Fatal("repeat request recorded no cache hits")
	}
}

// TestCacheRespectsByteBound sweeps deltas through a cache far too small for
// them and checks the bound holds and evictions are counted.
func TestCacheRespectsByteBound(t *testing.T) {
	// One 49x49 root entry alone is ~20 KiB of matrix; bound the cache to
	// roughly two level-1 entries (7x7 matrices plus pair/leaf overhead).
	const bound = 8 << 10
	srv := newEngineTestServer(t, EngineOptions{Workers: 2, CacheBytes: bound})
	for delta := 0; delta <= 3; delta++ {
		if _, err := srv.GenerateForest(1, delta); err != nil {
			t.Fatal(err)
		}
		if st := srv.Stats(); st.CacheBytes > bound {
			t.Fatalf("after delta %d sweep: cache holds %d bytes, bound %d", delta, st.CacheBytes, bound)
		}
	}
	st := srv.Stats()
	if st.Evictions == 0 {
		t.Fatalf("sweep over a %d-byte cache evicted nothing (stats %+v)", bound, st)
	}
	if st.CacheCapacity != bound {
		t.Fatalf("stats report capacity %d, want %d", st.CacheCapacity, bound)
	}
}

// TestWarmupFillsCache precomputes all combinations and checks traffic after
// warmup is served without new solves.
func TestWarmupFillsCache(t *testing.T) {
	srv := newEngineTestServer(t, EngineOptions{Workers: 4})
	if err := srv.Warmup(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	solved := srv.Stats().Solves
	// Height-2 tree: levels 1 and 2 have 7+1 nodes, deltas 0..1 -> 16 solves.
	if solved != 16 {
		t.Fatalf("warmup ran %d solves, want 16", solved)
	}
	for level := 1; level <= 2; level++ {
		for delta := 0; delta <= 1; delta++ {
			if _, err := srv.GenerateForest(level, delta); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := srv.Stats(); st.Solves != solved {
		t.Fatalf("post-warmup traffic re-solved: %d -> %d", solved, st.Solves)
	}
}

// TestGenerateForestCtxCancel checks an expired context aborts generation.
func TestGenerateForestCtxCancel(t *testing.T) {
	srv := newEngineTestServer(t, EngineOptions{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.GenerateForestCtx(ctx, 1, 1); err == nil {
		t.Fatal("canceled context must fail generation")
	}
	if st := srv.Stats(); st.Solves != 0 {
		t.Fatalf("canceled request still ran %d solves", st.Solves)
	}
}

// TestEngineArgumentValidation covers the engine-path argument checks.
func TestEngineArgumentValidation(t *testing.T) {
	srv := newEngineTestServer(t, EngineOptions{})
	if _, err := srv.GenerateForest(0, 0); err == nil {
		t.Error("level 0 must fail")
	}
	if _, err := srv.GenerateForest(9, 0); err == nil {
		t.Error("level beyond height must fail")
	}
	if _, err := srv.GenerateForest(1, -1); err == nil {
		t.Error("negative delta must fail")
	}
	if _, err := srv.GenerateEntry(loctree.NodeID{Level: 7}, 0); err == nil {
		t.Error("foreign node must fail")
	}
	if err := srv.Warmup(context.Background(), -1); err == nil {
		t.Error("negative warmup delta must fail")
	}
}
