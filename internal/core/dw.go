// Dantzig-Wolfe column generation for the obfuscation LP.
//
// The LP of Equ. (8)/(16) has block-angular structure: the Geo-Ind
// constraints touch one column of Z at a time, and all columns share the
// same feasible cone
//
//	C = { x >= 0 : x[p.I] <= mult_p * x[p.J]  for every pair p },
//
// while the row-sum constraints sum_l z[i][l] = 1 couple the columns. A
// direct simplex must factor bases with e^{eps*d} ~ 1e6-range entries whose
// elimination chains overflow double precision; the decomposition instead
// solves
//
//	master:     min sum_{l,g} (w_l . g) lambda_{l,g}
//	            s.t. sum_{l,g} lambda_{l,g} * g = 1   (K rows)
//	pricing_l:  min (w_l - y) . x  over  P = C ∩ {sum x = 1}
//
// where the master columns g are vertices of the small polytope P. Master
// bases contain only probability vectors (beautifully scaled); pricing LPs
// have K variables — the regime the sparse solver handles exactly. The
// paper itself points at optimization decomposition as the scalable route
// (Sec. 5.3, citing its ref [12]).
//
// A welcome side effect: every intermediate master solution assembles into
// a matrix whose columns lie in C, so even an early-stopped run returns a
// strictly Geo-Ind-feasible (merely suboptimal) matrix.
package core

import (
	"container/heap"
	"fmt"
	"math"

	"corgi/internal/lp"
	"corgi/internal/obf"
)

// dwOptions tunes the decomposition.
type dwOptions struct {
	MaxRounds   int     // pricing rounds before giving up (default 400)
	PriceTol    float64 // a block must price below -PriceTol to enter
	Exact       bool    // run the tail to full optimality certification
	SeedUniform bool    // seed the uniform generator per block (tightened cones)
	NoWarmStart bool    // disable master/pricing warm starts (benchmarking)
	SubLP       *lp.Options
	MasterLP    *lp.Options
	OnProgress  func(round int, masterObj float64, negBlocks int)
}

func (o *dwOptions) noWarm() bool { return o != nil && o.NoWarmStart }

// dwStallTol ends the convergence tail once the master objective improves
// by less than this relative amount over dwStallRounds consecutive rounds
// (unless Exact). The assembled matrix stays exactly feasible; only the
// objective is within ~dwStallTol*dwStallRounds of optimal.
const (
	dwStallTol    = 1e-3
	dwStallRounds = 3
	// dwExactBudget caps the number of exact pricing LP solves per
	// generation when not in Exact mode; the tail then stops with a
	// feasible, near-optimal master. Certification mode ignores the cap.
	dwExactBudget = 30
)

func (o *dwOptions) maxRounds() int {
	if o == nil || o.MaxRounds <= 0 {
		return 400
	}
	return o.MaxRounds
}

func (o *dwOptions) priceTol() float64 {
	if o == nil || o.PriceTol <= 0 {
		return 1e-9
	}
	return o.PriceTol
}

// dwColumn is one generated master column: generator g used by block l.
type dwColumn struct {
	block int
	g     []float64
	cost  float64
}

// solveDW solves the obfuscation LP by column generation. pairs/mult define
// the cone (identical for every block); the objective is the instance's
// prior-weighted cost. Returns the assembled matrix and solve statistics
// (simplex pivots, warm-start attempts/accepts) across master and pricing
// solves. Master re-solves are warm-started from the previous round's basis
// (column indices are append-only until the pruning pass reindexes them);
// pricing solves are warm-started from the last pricing basis, which stays
// primal feasible because only the objective changes between blocks.
func (inst *Instance) solveDW(pairs []obf.Pair, mult []float64, opt *dwOptions, seed []dwColumn) (*obf.Matrix, []dwColumn, solveStats, error) {
	k := inst.K()
	blockCost := make([][]float64, k) // w_l[i] = priors[i]*cost[i][l]
	for l := 0; l < k; l++ {
		w := make([]float64, k)
		for i := 0; i < k; i++ {
			w[i] = inst.priors[i] * inst.cost[i][l]
		}
		blockCost[l] = w
	}

	// Pricing problem skeleton: K vars, cone rows + simplex row. The
	// objective is rewritten every call.
	var st solveStats
	sub := lp.NewProblem(k)
	{
		idx := make([]int, k)
		ones := make([]float64, k)
		for j := 0; j < k; j++ {
			idx[j], ones[j] = j, 1
		}
		if err := sub.AddConstraint(lp.EQ, 1, idx, ones); err != nil {
			return nil, nil, st, err
		}
		for pi, p := range pairs {
			if err := sub.AddConstraint(lp.LE, 0, []int{p.I, p.J}, []float64{1, -mult[pi]}); err != nil {
				return nil, nil, st, err
			}
		}
	}
	subOpts := &lp.Options{Perturb: true}
	if opt != nil && opt.SubLP != nil {
		subOpts = opt.SubLP
	}

	// Fast pricing candidates: the single-peak exponential profiles
	// x^(m)_j = exp(-sigma_m(j)), sigma_m = shortest path from m under arc
	// weights ln(mult). These are vertices of P (the tight set is the
	// shortest-path tree), so adding one is always sound; the exact LP
	// below only runs for blocks where no profile prices negative, which
	// keeps convergence exact while eliminating most pricing solves.
	profiles := exponentialProfiles(k, pairs, mult)
	masterOpts := &lp.Options{}
	if opt != nil && opt.MasterLP != nil {
		masterOpts = opt.MasterLP
	}

	// Big-M artificials keep the master feasible until enough columns exist.
	maxW := 0.0
	for l := range blockCost {
		for _, v := range blockCost[l] {
			if a := math.Abs(v); a > maxW {
				maxW = a
			}
		}
	}
	bigM := (maxW + 1) * float64(k) * 10

	// Re-admit seed generators that remain inside the (possibly tightened)
	// cone; their cost is re-derived for their block.
	var cols []dwColumn
	for _, c := range seed {
		if c.block < 0 || c.block >= k || len(c.g) != k {
			continue
		}
		ok := true
		for pi, p := range pairs {
			if c.g[p.I] > mult[pi]*c.g[p.J]+1e-12 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		cost := 0.0
		for i := 0; i < k; i++ {
			cost += blockCost[c.block][i] * c.g[i]
		}
		cols = append(cols, dwColumn{block: c.block, g: c.g, cost: cost})
	}
	// Seed every block with the uniform generator when it lies in the cone
	// (guaranteed whenever every multiplier is >= 1, which the capped
	// reserved budget ensures): the master is then feasible from round 0
	// and the Big-M artificials only ever carry numerical dust.
	uniformOK := opt != nil && opt.SeedUniform
	for _, m := range mult {
		if m < 1 {
			uniformOK = false
			break
		}
	}
	if uniformOK {
		u := make([]float64, k)
		for i := range u {
			u[i] = 1 / float64(k)
		}
		for l := 0; l < k; l++ {
			cost := 0.0
			for i := 0; i < k; i++ {
				cost += blockCost[l][i] * u[i]
			}
			cols = append(cols, dwColumn{block: l, g: u, cost: cost})
		}
	}
	priceTol := opt.priceTol()
	objW := make([]float64, k)
	type profKey struct {
		block, peak int
	}
	profAdded := map[profKey]bool{}
	// learned collects LP-discovered generators; they are shared across
	// blocks in the fast pass (a vertex found for one block often prices
	// negative for its neighbors too).
	var learned [][]float64
	const learnedCap = 256

	// Warm-start state: the previous master basis (invalidated when column
	// pruning reindexes cols) and the last pricing basis.
	var masterBasis, subBasis []int

	solveMaster := func() (*lp.Solution, error) {
		nv := k + len(cols) // artificials first, then generated columns
		mp := lp.NewProblem(nv)
		objVec := make([]float64, nv)
		for i := 0; i < k; i++ {
			objVec[i] = bigM
		}
		for ci, c := range cols {
			objVec[k+ci] = c.cost
		}
		if err := mp.SetObjective(objVec); err != nil {
			return nil, err
		}
		idx := make([]int, 0, nv)
		val := make([]float64, 0, nv)
		for i := 0; i < k; i++ {
			idx = idx[:0]
			val = val[:0]
			idx = append(idx, i) // artificial for row i
			val = append(val, 1)
			for ci, c := range cols {
				if c.g[i] != 0 {
					idx = append(idx, k+ci)
					val = append(val, c.g[i])
				}
			}
			if err := mp.AddConstraint(lp.EQ, 1, idx, val); err != nil {
				return nil, err
			}
		}
		mOpts := *masterOpts // copy: never mutate the caller's Options
		if !opt.noWarm() && len(masterBasis) > 0 {
			mOpts.WarmBasis = masterBasis
			st.warmAttempts++
		}
		sol, err := lp.Solve(mp, &mOpts)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("core: DW master %v (%s)", sol.Status, sol.Note)
		}
		if sol.Warm {
			st.warmAccepts++
		}
		masterBasis = sol.Basis
		st.iters += sol.Iterations
		return sol, nil
	}

	var master *lp.Solution
	converged := false
	exact := opt != nil && opt.Exact
	prevObj := math.Inf(1)
	stall := 0
	cursor := 0
	exactSolves := 0
	for round := 0; round < opt.maxRounds(); round++ {
		var err error
		master, err = solveMaster()
		if err != nil {
			return nil, nil, st, err
		}
		// Early-stop on a stalled tail (feasible, near-optimal). Only once
		// the Big-M artificials have left the solution.
		artMass := 0.0
		for i := 0; i < k; i++ {
			artMass += master.X[i]
		}
		if !exact && artMass < 1e-9 {
			rel := (prevObj - master.Objective) / math.Max(math.Abs(master.Objective), 1e-12)
			if rel < dwStallTol {
				stall++
				if stall >= dwStallRounds {
					break
				}
			} else {
				stall = 0
			}
		}
		prevObj = master.Objective
		y := master.Duals
		added, negBlocks := 0, 0
		// Fast pass: for every block, try the single-peak profiles first.
		needExact := make([]bool, k)
		for l := 0; l < k; l++ {
			for i := 0; i < k; i++ {
				objW[i] = blockCost[l][i] - y[i]
			}
			bestProfile, bestVal := -1, -priceTol
			for m := 0; m < k; m++ {
				if profAdded[profKey{l, m}] {
					continue
				}
				v := 0.0
				for i := 0; i < k; i++ {
					v += objW[i] * profiles[m][i]
				}
				if v < bestVal {
					bestVal = v
					bestProfile = m
				}
			}
			var bestLearned []float64
			for m := range learned {
				if profAdded[profKey{l, -m - 1}] {
					continue
				}
				v := 0.0
				for i := 0; i < k; i++ {
					v += objW[i] * learned[m][i]
				}
				if v < bestVal {
					bestVal = v
					bestProfile = -m - 1
					bestLearned = learned[m]
				}
			}
			if bestProfile != -1 {
				g := bestLearned
				if bestProfile >= 0 {
					g = profiles[bestProfile]
				}
				cost := 0.0
				for i := 0; i < k; i++ {
					cost += blockCost[l][i] * g[i]
				}
				cols = append(cols, dwColumn{block: l, g: g, cost: cost})
				profAdded[profKey{l, bestProfile}] = true
				added++
				negBlocks++
			} else {
				needExact[l] = true
			}
		}
		// Exact pass: only when the fast pass made no progress at all does
		// a full LP certification round run. This concentrates the
		// expensive pricing solves in the convergence tail.
		if added == 0 {
			if !exact && exactSolves >= dwExactBudget && artMass < 1e-9 {
				break // tail budget spent: accept the near-optimal master
			}
			for scan := 0; scan < k; scan++ {
				l := (cursor + scan) % k
				if !needExact[l] {
					continue
				}
				exactSolves++
				for i := 0; i < k; i++ {
					objW[i] = blockCost[l][i] - y[i]
				}
				if err := sub.SetObjective(objW); err != nil {
					return nil, nil, st, err
				}
				sOpts := *subOpts
				if !opt.noWarm() && len(subBasis) > 0 {
					sOpts.WarmBasis = subBasis
					st.warmAttempts++
				}
				subSol, err := lp.Solve(sub, &sOpts)
				if err != nil {
					return nil, nil, st, err
				}
				if subSol.Warm {
					st.warmAccepts++
				}
				if subSol.Status == lp.Optimal {
					subBasis = subSol.Basis
				}
				st.iters += subSol.Iterations
				switch subSol.Status {
				case lp.Optimal:
				case lp.Infeasible:
					// The cone intersected with the simplex is empty: the
					// requested budget admits no stochastic matrix.
					return nil, nil, st, fmt.Errorf("core: Geo-Ind constraints infeasible (delta too aggressive for epsilon)")
				default:
					return nil, nil, st, fmt.Errorf("core: DW pricing %v (%s)", subSol.Status, subSol.Note)
				}
				if subSol.Objective < -priceTol {
					negBlocks++
					g := append([]float64(nil), subSol.X...)
					cost := 0.0
					for i := 0; i < k; i++ {
						cost += blockCost[l][i] * g[i]
					}
					cols = append(cols, dwColumn{block: l, g: g, cost: cost})
					added++
					if len(learned) < learnedCap {
						learned = append(learned, g)
					} else {
						learned[len(cols)%learnedCap] = g
					}
					// Batch a handful of improving columns per master
					// re-solve; a full clean sweep is still required to
					// declare convergence.
					cursor = (l + 1) % k
					if added >= 8 {
						break
					}
				}
			}
		}
		// Contain master growth: keep columns the master actually uses
		// plus the freshest generation.
		if len(cols) > 12*k {
			kept := make([]dwColumn, 0, 8*k)
			for ci, c := range cols {
				if ci < len(master.X)-k {
					if master.X[k+ci] > 1e-12 {
						kept = append(kept, c)
						continue
					}
				}
				if ci >= len(cols)-4*k {
					kept = append(kept, c)
				}
			}
			cols = kept
			masterBasis = nil // pruning reindexed the master's columns
		}
		if opt != nil && opt.OnProgress != nil {
			opt.OnProgress(round, master.Objective, negBlocks)
		}
		if added == 0 {
			converged = true
			break
		}
	}
	if master == nil {
		return nil, nil, st, fmt.Errorf("core: DW produced no master solution")
	}
	if !converged {
		// Early stop: re-solve the master over everything generated so far;
		// the assembled matrix is feasible, just possibly suboptimal.
		var err error
		master, err = solveMaster()
		if err != nil {
			return nil, nil, st, err
		}
	}
	// Reject if artificials still carry real weight: no feasible assembly
	// exists. Sub-1e-4 residues are numerical dust (coverage of a row by
	// mass ~e^{-eps*d*diameter}); row normalization absorbs them below the
	// audit tolerance.
	for i := 0; i < k; i++ {
		if master.X[i] > 1e-4 {
			return nil, nil, st, fmt.Errorf("core: DW master infeasible (artificial %d = %g): delta too aggressive for epsilon", i, master.X[i])
		}
	}

	z := obf.NewMatrix(k)
	for ci, c := range cols {
		lambda := master.X[k+ci]
		if lambda <= 0 {
			continue
		}
		for i := 0; i < k; i++ {
			if c.g[i] != 0 {
				z.Set(i, c.block, z.At(i, c.block)+lambda*c.g[i])
			}
		}
	}
	if err := z.NormalizeRows(1e-6); err != nil {
		return nil, nil, st, fmt.Errorf("core: DW assembly: %w", err)
	}
	return z, cols, st, nil
}

// exponentialProfiles returns, for every peak m, the normalized profile
// x_j = exp(-sigma_m(j)) where sigma_m(j) is the shortest directed path
// from m to j under arc weight ln(mult_p) on arc (p.I -> p.J). Such a
// profile satisfies every cone constraint x_i <= mult*x_j (shortest-path
// optimality condition), so it is a feasible — in fact extreme — point of
// P = C ∩ simplex.
func exponentialProfiles(k int, pairs []obf.Pair, mult []float64) [][]float64 {
	// Arc list: sigma_j <= sigma_i + ln(mult) encodes x_i <= mult*x_j.
	type arc struct {
		to int32
		w  float64
	}
	adj := make([][]arc, k)
	for pi, p := range pairs {
		w := math.Log(mult[pi])
		if w < 0 {
			w = 0 // capped budgets keep mult >= 1; guard regardless
		}
		adj[p.I] = append(adj[p.I], arc{to: int32(p.J), w: w})
	}
	out := make([][]float64, k)
	dist := make([]float64, k)
	for m := 0; m < k; m++ {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[m] = 0
		pq := &profHeap{items: []profItem{{node: int32(m)}}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(profItem)
			if it.d > dist[it.node] {
				continue
			}
			for _, a := range adj[it.node] {
				if nd := it.d + a.w; nd < dist[a.to] {
					dist[a.to] = nd
					heap.Push(pq, profItem{node: a.to, d: nd})
				}
			}
		}
		prof := make([]float64, k)
		sum := 0.0
		for i := 0; i < k; i++ {
			prof[i] = math.Exp(-dist[i])
			sum += prof[i]
		}
		if sum > 0 {
			for i := range prof {
				prof[i] /= sum
			}
		}
		out[m] = prof
	}
	return out
}

type profItem struct {
	node int32
	d    float64
}

type profHeap struct{ items []profItem }

func (h *profHeap) Len() int           { return len(h.items) }
func (h *profHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *profHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *profHeap) Push(x interface{}) { h.items = append(h.items, x.(profItem)) }
func (h *profHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
