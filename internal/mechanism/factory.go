package mechanism

import (
	"fmt"
	"sort"
	"sync"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/obf"
	"corgi/internal/planar"
)

// BuildConfig parameterizes a mechanism build over one finite cell set.
type BuildConfig struct {
	// Sys anchors the cells geographically (distances in km).
	Sys *hexgrid.System
	// Cells are the leaf cells (level 0) the matrix covers, in row order.
	Cells []hexgrid.Coord
	// Priors are the per-cell priors, index-aligned with Cells. Nil means
	// uniform.
	Priors []float64
	// Targets / TargetProbs are the service locations the LP's quality
	// objective weighs (the paper's NR_TARGET protocol); builders that
	// need none ignore them. Nil defaults to the first min(3, n) cell
	// centers, uniformly weighted.
	Targets     []geo.LatLng
	TargetProbs []float64
	// Epsilon is the Geo-Ind budget (km^-1).
	Epsilon float64
	// Delta is the robustness prune budget (Algorithm 1); 0 builds a
	// non-robust matrix. Builders without a robustness notion ignore it.
	Delta int
	// Iterations bounds Algorithm-1 robustness rounds; <= 0 lets the
	// builder pick its default.
	Iterations int
}

func (c BuildConfig) withDefaults() (BuildConfig, error) {
	if c.Sys == nil {
		return c, fmt.Errorf("mechanism: build needs a hexgrid system")
	}
	if len(c.Cells) == 0 {
		return c, fmt.Errorf("mechanism: build needs at least one cell")
	}
	if c.Priors == nil {
		c.Priors = make([]float64, len(c.Cells))
		for i := range c.Priors {
			c.Priors[i] = 1
		}
	}
	if len(c.Priors) != len(c.Cells) {
		return c, fmt.Errorf("mechanism: %d priors for %d cells", len(c.Priors), len(c.Cells))
	}
	if c.Targets == nil {
		n := len(c.Cells)
		if n > 3 {
			n = 3
		}
		for i := 0; i < n; i++ {
			c.Targets = append(c.Targets, c.Sys.Center(0, c.Cells[i]))
			c.TargetProbs = append(c.TargetProbs, 1)
		}
	}
	return c, nil
}

// Factory is one registered way of building an obfuscation matrix. The
// registry is what lets the evaluation harness and the fuzzed row
// contract sweep "all registered mechanisms" without naming them: the
// planar-Laplace builder registers here, and internal/core's init
// registers the LP-optimal forest builders (the dependency points that
// way — core imports mechanism, never the reverse).
type Factory struct {
	// Name identifies the mechanism in frontier artifacts ("forest-optimal",
	// "planar-laplace", ...). Unique.
	Name string
	// Robust marks builders whose matrices are δ-prunable by
	// construction for the configured Delta (Algorithm 1), as opposed to
	// baselines that merely happen to survive pruning.
	Robust bool
	// Build constructs the row-stochastic matrix over cfg.Cells.
	Build func(cfg BuildConfig) (*obf.Matrix, error)
}

var (
	factoryMu sync.RWMutex
	factories = map[string]Factory{}
)

// Register adds a mechanism builder. Duplicate names panic: registration
// happens in package init blocks, where a collision is a programmer
// error.
func Register(f Factory) {
	if f.Name == "" || f.Build == nil {
		panic("mechanism: Register needs a name and a builder")
	}
	factoryMu.Lock()
	defer factoryMu.Unlock()
	if _, dup := factories[f.Name]; dup {
		panic(fmt.Sprintf("mechanism: duplicate factory %q", f.Name))
	}
	factories[f.Name] = f
}

// Factories lists every registered mechanism, name-sorted for stable
// sweeps.
func Factories() []Factory {
	factoryMu.RLock()
	defer factoryMu.RUnlock()
	out := make([]Factory, 0, len(factories))
	for _, f := range factories {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupFactory finds a registered mechanism by name.
func LookupFactory(name string) (Factory, bool) {
	factoryMu.RLock()
	defer factoryMu.RUnlock()
	f, ok := factories[name]
	return f, ok
}

// Build runs a registered mechanism builder by name with defaulted
// config.
func Build(name string, cfg BuildConfig) (*obf.Matrix, error) {
	f, ok := LookupFactory(name)
	if !ok {
		return nil, fmt.Errorf("mechanism: no factory %q", name)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return f.Build(cfg)
}

// PlanarLaplaceName is the analytic discretized planar-Laplace builder's
// registry name — the mechanism degraded serving answers from.
const PlanarLaplaceName = "planar-laplace"

func init() {
	Register(Factory{
		Name:   PlanarLaplaceName,
		Robust: true, // δ-prunable for every δ: the analytic bound holds row-wise
		Build: func(cfg BuildConfig) (*obf.Matrix, error) {
			cfg, err := cfg.withDefaults()
			if err != nil {
				return nil, err
			}
			centers := make([]geo.LatLng, len(cfg.Cells))
			for i, c := range cfg.Cells {
				centers[i] = cfg.Sys.Center(0, c)
			}
			rows, err := planar.DiscretizedRows(len(centers), func(i, j int) float64 {
				return geo.Haversine(centers[i], centers[j])
			}, cfg.Epsilon)
			if err != nil {
				return nil, err
			}
			m := obf.NewMatrix(len(rows))
			for i, row := range rows {
				copy(m.Row(i), row)
			}
			return m, nil
		},
	})
}
