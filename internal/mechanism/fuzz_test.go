package mechanism_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	_ "corgi/internal/core" // register the forest mechanism factories
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/policy"
)

// fuzzWorld is the shared K=7 instance the row-contract fuzzer binds
// against: one level-1 subtree so every registered mechanism builds in
// milliseconds, with matrices cached per (factory, epsilon, delta) so the
// fuzzer spends its iterations on bindings, not LP solves.
type fuzzWorld struct {
	tree   *loctree.Tree
	root   loctree.NodeID
	leaves []loctree.NodeID
	build  mechanism.BuildConfig
	priors *loctree.Priors

	mu      sync.Mutex
	sources map[string]*mechanism.StaticSource
}

var (
	fuzzOnce sync.Once
	fuzzW    *fuzzWorld
	fuzzErr  error
)

func newFuzzWorld() (*fuzzWorld, error) {
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		return nil, err
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 1)
	if err != nil {
		return nil, err
	}
	leaves := tree.LevelNodes(0)
	root := tree.LevelNodes(1)[0]
	cells := make([]hexgrid.Coord, len(leaves))
	for i, l := range leaves {
		cells[i] = l.Coord
	}
	return &fuzzWorld{
		tree:    tree,
		root:    root,
		leaves:  leaves,
		build:   mechanism.BuildConfig{Sys: sys, Cells: cells, Iterations: 2},
		priors:  loctree.UniformPriors(tree),
		sources: map[string]*mechanism.StaticSource{},
	}, nil
}

// source builds (or returns the cached) matrix for one factory at one
// (epsilon, delta), wrapped as a StaticSource.
func (w *fuzzWorld) source(f mechanism.Factory, eps float64, delta int) (*mechanism.StaticSource, error) {
	key := fmt.Sprintf("%s|%g|%d", f.Name, eps, delta)
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.sources[key]; ok {
		return s, nil
	}
	bc := w.build
	bc.Epsilon = eps
	bc.Delta = delta
	m, err := mechanism.Build(f.Name, bc)
	if err != nil {
		return nil, fmt.Errorf("building %s at eps=%g delta=%d: %w", f.Name, eps, delta, err)
	}
	s, err := mechanism.NewStaticSource(w.root, w.leaves, m, false)
	if err != nil {
		return nil, err
	}
	w.sources[key] = s
	return s, nil
}

// FuzzMechanismRowContract fuzzes the Mechanism row contract across every
// registered factory: for any admitted binding — fuzzer-chosen epsilon,
// prune budget delta, prune-set bits, precision level — every served row
// must have non-negative weights summing to 1 over Nodes(), and the
// binding's metadata must respect |S| <= delta. A binding the
// implementation refuses (prune set over budget, every leaf pruned, a row
// degenerate after pruning) is fine; serving a malformed row is the bug.
func FuzzMechanismRowContract(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(15), false)
	f.Add(uint8(3), uint8(0b0000101), uint8(10), false)
	f.Add(uint8(2), uint8(0b1000001), uint8(20), true)
	f.Add(uint8(7), uint8(0b1111111), uint8(5), false)

	f.Fuzz(func(t *testing.T, deltaB, pruneBits, epsB uint8, precision bool) {
		fuzzOnce.Do(func() { fuzzW, fuzzErr = newFuzzWorld() })
		if fuzzErr != nil {
			t.Fatal(fuzzErr)
		}
		w := fuzzW
		// Small discrete grids keep the (factory, eps, delta) cache — and
		// the LP solve count — bounded no matter what the fuzzer explores.
		eps := []float64{5, 10, 15, 20}[epsB%4]
		delta := int(deltaB) % (len(w.leaves) + 1)
		var pruned []loctree.NodeID
		for i, l := range w.leaves {
			if pruneBits&(1<<i) != 0 {
				pruned = append(pruned, l)
			}
		}
		pol := policy.Policy{PrivacyLevel: 1}
		if precision {
			pol.PrecisionLevel = 1
		}

		for _, fac := range mechanism.Factories() {
			src, err := w.source(fac, eps, delta)
			if err != nil {
				// A build the solver refuses (delta too aggressive for
				// epsilon) is a legal outcome, not a contract violation.
				continue
			}
			b, err := mechanism.Bind(mechanism.Config{
				Tree:    w.tree,
				Source:  src,
				Delta:   delta,
				Policy:  pol,
				Pruned:  pruned,
				Priors:  w.priors,
				Epsilon: eps,
			})
			if err != nil {
				continue // refused bindings (|S| > delta, empty support) are legal
			}
			meta := b.Meta()
			if meta.Pruned != len(pruned) {
				t.Fatalf("%s: meta.Pruned = %d, want %d", fac.Name, meta.Pruned, len(pruned))
			}
			if meta.Pruned > delta {
				t.Fatalf("%s: admitted prune set of %d over budget delta=%d", fac.Name, meta.Pruned, delta)
			}
			if meta.Epsilon != eps {
				t.Fatalf("%s: meta.Epsilon = %g, want %g", fac.Name, meta.Epsilon, eps)
			}
			nodes := b.Nodes()
			if meta.Support != len(nodes) {
				t.Fatalf("%s: meta.Support = %d but %d report nodes", fac.Name, meta.Support, len(nodes))
			}
			for i := range nodes {
				row, err := b.Row(i)
				if err != nil {
					// ErrUnsampleable (a row degenerate after pruning) is a
					// legal refusal; the contract covers rows actually served.
					continue
				}
				if len(row) != len(nodes) {
					t.Fatalf("%s: row %d has %d weights for %d nodes", fac.Name, i, len(row), len(nodes))
				}
				sum := 0.0
				for j, v := range row {
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("%s: row %d weight %d = %v", fac.Name, i, j, v)
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("%s: row %d sums to %v, want 1", fac.Name, i, sum)
				}
			}
		}
	})
}
