// Package mechanism is the single row-serving abstraction every
// obfuscation path in the repo produces and consumes rows through. A
// mechanism, in the paper's sense, is a row-stochastic matrix Z over a
// subtree's leaf cells; customized serving asks, for one user (policy,
// prune set S with |S| <= δ, precision level), for the normalized weight
// row their true cell draws from plus its metadata (ε, support size,
// precision grouping).
//
// Before this package existed that ask was answered three separate times:
// internal/session pruned/renormalized/precision-grouped rows for the
// server's resident report sessions, internal/clientdraw re-implemented
// the leaf→row resolution and alias build for lease replay, and
// core.GenerateObfuscatedLocation materialized whole pruned and
// precision-reduced matrices for the user-side reference path. All three
// now bottom out here:
//
//   - Binding (binding.go) is the live form: one (Source, policy, prune
//     set) evaluation serving rows lazily — exactly the float operation
//     order the session hot path has always used, which is what keeps
//     draws byte-identical across the in-proc, HTTP, stream, and lease
//     serving paths.
//   - Rows (rows.go) is the detached form: the exact weight vectors a
//     lease bundle ships, rebuilt into the same alias tables on the
//     device.
//   - Factory (factory.go) is the build form: the registry of ways to
//     construct the underlying matrix (LP-optimal forest entries,
//     analytic planar-Laplace rows), which is what internal/eval sweeps
//     and the fuzz contract test iterate over.
//
// Sources are wrappers over whatever owns the matrix: core.ForestEntry
// satisfies Source directly (sharing its engine-accounted alias cache),
// and StaticSource adapts a bare matrix (planar fallback rows, eval
// matrices, tests).
package mechanism

import (
	"errors"
	"fmt"
	"sync"

	"corgi/internal/loctree"
	"corgi/internal/obf"
	"corgi/internal/sample"
)

// minMass mirrors obf.Matrix.Prune: a row retaining less mass than this
// after pruning makes renormalization numerically unstable.
const minMass = 1e-9

// ErrUnsampleable marks a draw that failed because the matrix data cannot
// support it — a row degenerate after pruning, or an alias build over a
// zero-mass row. These are server-side data conditions, not request
// faults: the serving layer maps them to 5xx, unlike caller mistakes.
var ErrUnsampleable = errors.New("mechanism: row unsampleable")

// ErrOutsideSubtree marks a row ask for a cell the binding's subtree does
// not cover. Under mobility this is retryable: registry.Report re-anchors
// the session and retries instead of failing the request.
var ErrOutsideSubtree = errors.New("mechanism: cell outside the bound subtree")

// Source is one subtree's obfuscation matrix as the serving stack sees
// it: the support leaves indexing rows and columns, raw row access for
// customization, and a shared per-row alias cache for the unpruned fast
// path. core.ForestEntry satisfies it structurally; StaticSource adapts
// a bare matrix.
type Source interface {
	// SubtreeRoot is the privacy-subtree node the matrix covers.
	SubtreeRoot() loctree.NodeID
	// SupportLeaves are the leaf nodes indexing matrix rows/columns.
	SupportLeaves() []loctree.NodeID
	// Dim is the matrix dimension; 0 signals an unusable source (nil
	// entry, nil matrix) and callers must treat it as invalid.
	Dim() int
	// MatrixRow returns raw row i (unnormalized access to the underlying
	// row-stochastic matrix). Callers must not mutate it.
	MatrixRow(i int) []float64
	// SharedAliasRow returns the cached O(1) alias sampler for row i,
	// building it on first use. The cache is shared across every binding
	// of the source (the engine-LRU-accounted fast path for unpruned
	// leaf-precision draws).
	SharedAliasRow(i int) (*sample.Alias, error)
	// IsDegraded reports whether the rows come from a planar-Laplace
	// fallback rather than an LP-optimal solve.
	IsDegraded() bool
}

// StaticSource adapts a bare obfuscation matrix to the Source interface:
// planar-Laplace fallback rows, eval-built matrices, and test fixtures
// all serve through it. Safe for concurrent use; the alias cache builds
// lazily under an internal mutex, mirroring core.ForestEntry's.
type StaticSource struct {
	root     loctree.NodeID
	leaves   []loctree.NodeID
	m        *obf.Matrix
	degraded bool

	mu    sync.Mutex
	alias []*sample.Alias
}

// NewStaticSource validates the leaf/matrix alignment and wraps m.
func NewStaticSource(root loctree.NodeID, leaves []loctree.NodeID, m *obf.Matrix, degraded bool) (*StaticSource, error) {
	if m == nil || m.Dim() == 0 {
		return nil, fmt.Errorf("mechanism: static source for %v has no matrix", root)
	}
	if len(leaves) != m.Dim() {
		return nil, fmt.Errorf("mechanism: %d leaves for a %d-dim matrix", len(leaves), m.Dim())
	}
	return &StaticSource{root: root, leaves: leaves, m: m, degraded: degraded}, nil
}

// SubtreeRoot implements Source.
func (s *StaticSource) SubtreeRoot() loctree.NodeID { return s.root }

// SupportLeaves implements Source.
func (s *StaticSource) SupportLeaves() []loctree.NodeID { return s.leaves }

// Dim implements Source.
func (s *StaticSource) Dim() int {
	if s == nil || s.m == nil {
		return 0
	}
	return s.m.Dim()
}

// MatrixRow implements Source.
func (s *StaticSource) MatrixRow(i int) []float64 { return s.m.Row(i) }

// IsDegraded implements Source.
func (s *StaticSource) IsDegraded() bool { return s.degraded }

// SharedAliasRow implements Source: the same lazy per-row alias cache a
// forest entry keeps, minus the engine byte accounting.
func (s *StaticSource) SharedAliasRow(i int) (*sample.Alias, error) {
	if i < 0 || i >= s.m.Dim() {
		return nil, fmt.Errorf("mechanism: alias row %d outside matrix dimension %d", i, s.m.Dim())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.alias == nil {
		s.alias = make([]*sample.Alias, s.m.Dim())
	}
	if a := s.alias[i]; a != nil {
		return a, nil
	}
	a, err := sample.New(s.m.Row(i))
	if err != nil {
		return nil, fmt.Errorf("mechanism: alias for row %d of %v: %w", i, s.root, err)
	}
	s.alias[i] = a
	return a, nil
}

// RowMeta is the metadata half of a row ask: the privacy parameter the
// rows were generated under, the realized support, and how the support is
// grouped.
type RowMeta struct {
	// Epsilon is the Geo-Ind budget (km^-1) the matrix was built with, as
	// supplied by the binder; 0 when the caller did not plumb it.
	Epsilon float64
	// Support is the number of report nodes a draw can land on (kept
	// leaves at leaf precision, precision groups otherwise).
	Support int
	// Pruned is the realized prune-set size |S| (always <= the δ the
	// binding was admitted under).
	Pruned int
	// Groups is the precision-group count (0 at leaf precision).
	Groups int
	// Degraded mirrors the source: planar-Laplace fallback rows.
	Degraded bool
}

// rowForLeaf is the one leaf→row resolution shared by live bindings and
// detached row sets: precision > 0 reports from the leaf's ancestor
// group; at leaf precision a cell the user's own preferences pruned has
// no row to draw from (Algorithm 4's loud failure).
func rowForLeaf(tree *loctree.Tree, root loctree.NodeID, precision int, covered bool,
	prunedSet map[loctree.NodeID]bool, rowIndex map[loctree.NodeID]int,
	leaf loctree.NodeID) (int, error) {
	if !covered {
		return 0, fmt.Errorf("%w: cell %v, subtree %v", ErrOutsideSubtree, leaf, root)
	}
	rowNode := leaf
	if precision > 0 {
		anc, ok := tree.AncestorAt(leaf, precision)
		if !ok {
			return 0, fmt.Errorf("mechanism: no ancestor of %v at precision level %d", leaf, precision)
		}
		rowNode = anc
	} else if prunedSet[leaf] {
		return 0, fmt.Errorf("mechanism: preferences prune the user's own location %v at precision 0", leaf)
	}
	row, ok := rowIndex[rowNode]
	if !ok {
		return 0, fmt.Errorf("mechanism: node %v missing from the customized report set", rowNode)
	}
	return row, nil
}
