package mechanism_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/obf"
	"corgi/internal/planar"
	"corgi/internal/policy"
)

// edgeWorld is a 3-leaf slice of a level-1 subtree: small enough that a
// delta-2 prune leaves exactly one surviving cell.
func edgeWorld(t *testing.T) (*loctree.Tree, loctree.NodeID, []loctree.NodeID, func(i, j int) float64) {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 1)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.LevelNodes(1)[0]
	leaves := tree.LevelNodes(0)[:3]
	centers := make([]geo.LatLng, len(leaves))
	for i, l := range leaves {
		centers[i] = tree.Center(l)
	}
	dist := func(i, j int) float64 { return geo.Haversine(centers[i], centers[j]) }
	return tree, root, leaves, dist
}

// TestPlanarPruneToSingleCell drives planar.DiscretizedRows through the
// Mechanism interface with a prune set that leaves exactly one surviving
// cell: the binding must keep serving — a single report node whose
// normalized row is [1] and whose draws always land there — rather than
// degenerate. This is the planar fallback's "delta-prunable for every
// delta" claim at its boundary.
func TestPlanarPruneToSingleCell(t *testing.T) {
	tree, root, leaves, dist := edgeWorld(t)
	rows, err := planar.DiscretizedRows(len(leaves), dist, 15)
	if err != nil {
		t.Fatal(err)
	}
	m := obf.NewMatrix(len(rows))
	for i, row := range rows {
		copy(m.Row(i), row)
	}
	src, err := mechanism.NewStaticSource(root, leaves, m, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mechanism.Bind(mechanism.Config{
		Tree:    tree,
		Source:  src,
		Delta:   2,
		Policy:  policy.Policy{PrivacyLevel: 1},
		Pruned:  []loctree.NodeID{leaves[0], leaves[2]},
		Epsilon: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := b.Nodes()
	if len(nodes) != 1 || nodes[0] != leaves[1] {
		t.Fatalf("nodes = %v, want exactly [%v]", nodes, leaves[1])
	}
	meta := b.Meta()
	if meta.Support != 1 || meta.Pruned != 2 || !meta.Degraded {
		t.Fatalf("meta = %+v, want support 1, pruned 2, degraded", meta)
	}
	row, err := b.RowFor(leaves[1])
	if err != nil {
		t.Fatal(err)
	}
	weights, err := b.Row(row)
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 1 || math.Abs(weights[0]-1) > 1e-12 {
		t.Fatalf("normalized row = %v, want [1]", weights)
	}
	a, err := b.Alias(row)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 32; i++ {
		if got := a.Draw(rng); got != 0 {
			t.Fatalf("draw %d landed on index %d of a single-cell support", i, got)
		}
	}
	// The pruned cells themselves have no row to draw from at leaf
	// precision (Algorithm 4's loud failure), and an uncovered cell is the
	// retryable sentinel.
	if _, err := b.RowFor(leaves[0]); err == nil {
		t.Fatal("RowFor(pruned leaf) succeeded, want error")
	}
	outside := tree.LevelNodes(0)[3]
	if _, err := b.RowFor(outside); !errors.Is(err, mechanism.ErrOutsideSubtree) {
		t.Fatalf("RowFor(outside) = %v, want ErrOutsideSubtree", err)
	}
}

// TestZeroMassRowPropagatesUnsampleable pins the failure contract: a row
// whose mass the prune set removes entirely must surface as
// ErrUnsampleable from every row-serving method — the live alias build,
// the detached lease form, and the normalized audit row — so the serving
// layers' errors.Is classification (5xx, not 4xx) keeps working.
func TestZeroMassRowPropagatesUnsampleable(t *testing.T) {
	tree, root, leaves, _ := edgeWorld(t)
	// Row 0 reports cell 1 with certainty; pruning cell 1 strands it with
	// zero retained mass. Rows 1 and 2 stay healthy.
	m := obf.NewMatrix(3)
	copy(m.Row(0), []float64{0, 1, 0})
	copy(m.Row(1), []float64{0.2, 0.2, 0.6})
	copy(m.Row(2), []float64{0.3, 0.2, 0.5})
	src, err := mechanism.NewStaticSource(root, leaves, m, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mechanism.Bind(mechanism.Config{
		Tree:   tree,
		Source: src,
		Delta:  1,
		Policy: policy.Policy{PrivacyLevel: 1},
		Pruned: []loctree.NodeID{leaves[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	row, err := b.RowFor(leaves[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Alias(row); !errors.Is(err, mechanism.ErrUnsampleable) {
		t.Fatalf("Alias(zero-mass row) = %v, want ErrUnsampleable", err)
	}
	if _, err := b.DetachRow(row); !errors.Is(err, mechanism.ErrUnsampleable) {
		t.Fatalf("DetachRow(zero-mass row) = %v, want ErrUnsampleable", err)
	}
	if _, err := b.Row(row); !errors.Is(err, mechanism.ErrUnsampleable) {
		t.Fatalf("Row(zero-mass row) = %v, want ErrUnsampleable", err)
	}
	// The healthy rows keep serving from the same binding.
	healthy, err := b.RowFor(leaves[2])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Alias(healthy); err != nil {
		t.Fatalf("Alias(healthy row) = %v", err)
	}
}
