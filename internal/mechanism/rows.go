package mechanism

import (
	"fmt"

	"corgi/internal/loctree"
	"corgi/internal/sample"
)

// Rows is the detached form of a binding: the exact per-row weight
// vectors a lease bundle ships, plus the same leaf→row resolution and
// lazy alias builds the live Binding serves from. internal/clientdraw
// replays server draw sequences through it — equal float64 inputs build
// equal Walker tables, so a device-local draw lands byte-identical to
// the server's.
//
// An empty weight vector marks a row the server refused to detach
// (degenerate after pruning); asking for its alias is ErrUnsampleable,
// without consuming any randomness, matching the server's failed alias
// build.
//
// Like Binding, Rows is caller-synchronized: the alias cache mutates on
// first use of each row under the owner's lock.
type Rows struct {
	tree      *loctree.Tree
	root      loctree.NodeID
	precision int
	leafSet   map[loctree.NodeID]bool
	prunedSet map[loctree.NodeID]bool
	nodes     []loctree.NodeID
	rowIndex  map[loctree.NodeID]int
	weights   [][]float64
	rowAlias  map[int]*sample.Alias
}

// NewRows assembles a detached row set for one subtree. weights is
// index-aligned with nodes; an empty row is a server-refused row. The
// subtree must resolve to at least one leaf in this tree.
func NewRows(tree *loctree.Tree, root loctree.NodeID, precision int,
	pruned, nodes []loctree.NodeID, weights [][]float64) (*Rows, error) {
	if tree == nil {
		return nil, fmt.Errorf("mechanism: nil tree")
	}
	if len(weights) != len(nodes) {
		return nil, fmt.Errorf("mechanism: %d weight rows for %d report nodes", len(weights), len(nodes))
	}
	r := &Rows{
		tree:      tree,
		root:      root,
		precision: precision,
		leafSet:   make(map[loctree.NodeID]bool),
		prunedSet: make(map[loctree.NodeID]bool, len(pruned)),
		nodes:     nodes,
		rowIndex:  make(map[loctree.NodeID]int, len(nodes)),
		weights:   weights,
		rowAlias:  map[int]*sample.Alias{},
	}
	for _, leaf := range tree.LeavesUnder(root) {
		r.leafSet[leaf] = true
	}
	if len(r.leafSet) == 0 {
		return nil, fmt.Errorf("mechanism: subtree %v has no leaves in this tree", root)
	}
	for _, p := range pruned {
		r.prunedSet[p] = true
	}
	for i, n := range nodes {
		r.rowIndex[n] = i
	}
	return r, nil
}

// Root returns the detached subtree root.
func (r *Rows) Root() loctree.NodeID { return r.root }

// Nodes returns the report node set. Callers must not mutate it.
func (r *Rows) Nodes() []loctree.NodeID { return r.nodes }

// Covers reports whether the detached subtree contains leaf.
func (r *Rows) Covers(leaf loctree.NodeID) bool { return r.leafSet[leaf] }

// RowFor resolves a true leaf cell to its report row — the same
// resolution the live Binding applies, so refusals match the server's
// row for row.
func (r *Rows) RowFor(leaf loctree.NodeID) (int, error) {
	return rowForLeaf(r.tree, r.root, r.precision, r.leafSet[leaf],
		r.prunedSet, r.rowIndex, leaf)
}

// Alias builds (and caches) the alias table for one row from its exact
// detached weights — the same sample.New the server's row builds bottom
// out in. Caller must hold the owning lock.
func (r *Rows) Alias(row int) (*sample.Alias, error) {
	if a, ok := r.rowAlias[row]; ok {
		return a, nil
	}
	w := r.weights[row]
	if len(w) == 0 {
		// The server encoded this row empty: degenerate after pruning. No
		// randomness is consumed, matching the server's failed alias build.
		return nil, fmt.Errorf("%w: row %v degenerate after pruning", ErrUnsampleable, r.nodes[row])
	}
	a, err := sample.New(w)
	if err != nil {
		return nil, fmt.Errorf("%w: row %v: %v", ErrUnsampleable, r.nodes[row], err)
	}
	r.rowAlias[row] = a
	return a, nil
}
