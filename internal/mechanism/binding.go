package mechanism

import (
	"fmt"

	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/sample"
)

// Config binds one source to one user's customization.
type Config struct {
	// Tree is the region's location tree.
	Tree *loctree.Tree
	// Source is the subtree's obfuscation matrix (a forest entry or a
	// static wrapper).
	Source Source
	// Delta is the prune budget the source's matrix was generated with;
	// Bind verifies the policy's realized prune set fits it (Sec. 5.3).
	Delta int
	// Policy is the user's customization triple.
	Policy policy.Policy
	// Attrs provides per-leaf attributes for preference evaluation; nil is
	// fine when the policy has no preferences.
	Attrs map[loctree.NodeID]policy.Attributes
	// Pruned, when non-nil, is the precomputed prune set — the source
	// leaves failing Policy.Preferences — and Bind skips re-evaluating
	// them (an empty-but-non-nil slice means "evaluated, nothing pruned").
	// Leave nil to have Bind evaluate Preferences over Attrs.
	Pruned []loctree.NodeID
	// Anchor records the true cell the preference attributes were
	// evaluated at. Zero for preference-free policies.
	Anchor loctree.NodeID
	// Priors supplies leaf priors for precision reduction (Equ. 17);
	// required when Policy.PrecisionLevel > 0.
	Priors *loctree.Priors
	// Epsilon is the Geo-Ind budget the source was generated under,
	// surfaced in RowMeta. Metadata only: it never changes a weight.
	Epsilon float64
}

// Binding is one user's customized view of a source: the prune set
// evaluated, δ-prunability verified, the report node set fixed, and rows
// served lazily. It is the single implementation of prune/renormalize/
// precision-grouping behind the resident-session, lease-detach, and
// user-side (Algorithm 4) paths; the float operation order in buildRow /
// precisionWeights / DetachRow is what keeps draws byte-identical across
// all of them, so treat any change there as a wire-format change.
//
// A Binding is NOT internally synchronized: the alias cache mutates on
// first use of each row, and the owner (session mutex, single-threaded
// caller) must serialize access — the same discipline the session's
// binding half has always had.
type Binding struct {
	tree    *loctree.Tree
	pol     policy.Policy
	priors  *loctree.Priors
	src     Source
	epsilon float64
	anchor  loctree.NodeID

	leafIdx    map[loctree.NodeID]int // source leaf -> matrix row/col
	dropIdx    []bool                 // by source leaf position
	pruned     []loctree.NodeID
	prunedSet  map[loctree.NodeID]bool
	keptLeaves []loctree.NodeID
	keep       []int // kept source-leaf positions in order

	// nodes are the report outcomes (kept leaves, or precision-level
	// groups); rowIndex maps a row node to its index in nodes; groups
	// holds, per node, the keptLeaves positions it aggregates (precision
	// mode only).
	nodes    []loctree.NodeID
	rowIndex map[loctree.NodeID]int
	groups   [][]int

	rowAlias map[int]*sample.Alias
}

// Bind evaluates the policy against one source: preferences decide the
// prune set S over the subtree's leaves (step 2-3 of Fig. 8), the
// δ-prunability of the source is verified against |S| (Sec. 5.3: the
// reserved budget must cover the realized prune set), and the report node
// set is fixed. No alias table is built yet — rows build lazily on first
// use.
func Bind(cfg Config) (*Binding, error) {
	if cfg.Tree == nil {
		return nil, fmt.Errorf("mechanism: nil tree")
	}
	if cfg.Source == nil || cfg.Source.Dim() == 0 {
		return nil, fmt.Errorf("mechanism: nil source")
	}
	if cfg.Policy.PrecisionLevel > 0 && cfg.Priors == nil {
		return nil, fmt.Errorf("mechanism: precision level %d needs priors", cfg.Policy.PrecisionLevel)
	}
	leaves := cfg.Source.SupportLeaves()
	b := &Binding{
		tree:     cfg.Tree,
		pol:      cfg.Policy,
		priors:   cfg.Priors,
		src:      cfg.Source,
		epsilon:  cfg.Epsilon,
		anchor:   cfg.Anchor,
		leafIdx:  make(map[loctree.NodeID]int, len(leaves)),
		dropIdx:  make([]bool, len(leaves)),
		rowAlias: map[int]*sample.Alias{},
	}
	for i, l := range leaves {
		b.leafIdx[l] = i
	}
	switch {
	case cfg.Pruned != nil:
		for _, n := range cfg.Pruned {
			if _, ok := b.leafIdx[n]; !ok {
				return nil, fmt.Errorf("mechanism: pruned leaf %v not in subtree %v", n, cfg.Source.SubtreeRoot())
			}
		}
		b.pruned = cfg.Pruned
	case len(cfg.Policy.Preferences) > 0:
		evaluated, err := EvalPreferences(leaves, cfg.Policy, cfg.Attrs)
		if err != nil {
			return nil, err
		}
		b.pruned = evaluated
	}
	if len(b.pruned) > cfg.Delta {
		return nil, fmt.Errorf("mechanism: preferences prune %d locations but the matrix is only %d-prunable (Sec. 5.3 tradeoff)",
			len(b.pruned), cfg.Delta)
	}
	b.prunedSet = make(map[loctree.NodeID]bool, len(b.pruned))
	for _, n := range b.pruned {
		b.prunedSet[n] = true
		b.dropIdx[b.leafIdx[n]] = true
	}
	for i, l := range leaves {
		if !b.dropIdx[i] {
			b.keep = append(b.keep, i)
			b.keptLeaves = append(b.keptLeaves, l)
		}
	}
	if len(b.keptLeaves) == 0 {
		return nil, fmt.Errorf("mechanism: preferences prune every location in the subtree")
	}

	b.nodes = b.keptLeaves
	if cfg.Policy.PrecisionLevel > 0 {
		groups, groupNodes, err := GroupByAncestor(cfg.Tree, b.keptLeaves, cfg.Policy.PrecisionLevel)
		if err != nil {
			return nil, err
		}
		b.groups = groups
		b.nodes = groupNodes
	}
	b.rowIndex = make(map[loctree.NodeID]int, len(b.nodes))
	for i, n := range b.nodes {
		b.rowIndex[n] = i
	}
	return b, nil
}

// Source returns the bound source.
func (b *Binding) Source() Source { return b.src }

// Root returns the bound subtree root.
func (b *Binding) Root() loctree.NodeID { return b.src.SubtreeRoot() }

// Anchor returns the attribute anchor cell (zero for preference-free
// policies).
func (b *Binding) Anchor() loctree.NodeID { return b.anchor }

// Covers reports whether the bound subtree contains leaf.
func (b *Binding) Covers(leaf loctree.NodeID) bool {
	_, ok := b.leafIdx[leaf]
	return ok
}

// Nodes returns the report node set (kept leaves, or precision groups).
// Callers must not mutate it.
func (b *Binding) Nodes() []loctree.NodeID { return b.nodes }

// Pruned returns the leaves the policy's preferences removed. Callers
// must not mutate it.
func (b *Binding) Pruned() []loctree.NodeID { return b.pruned }

// Meta summarizes the binding: ε, support size, prune size, grouping.
func (b *Binding) Meta() RowMeta {
	return RowMeta{
		Epsilon:  b.epsilon,
		Support:  len(b.nodes),
		Pruned:   len(b.pruned),
		Groups:   len(b.groups),
		Degraded: b.src.IsDegraded(),
	}
}

// RowFor resolves a true leaf cell to the report row it draws from:
// precision ancestor lookup, pruned-own-location refusal, report-set
// membership. A cell outside the subtree is ErrOutsideSubtree.
func (b *Binding) RowFor(leaf loctree.NodeID) (int, error) {
	_, covered := b.leafIdx[leaf]
	return rowForLeaf(b.tree, b.src.SubtreeRoot(), b.pol.PrecisionLevel,
		covered, b.prunedSet, b.rowIndex, leaf)
}

// Alias returns the alias table for one report row, building and caching
// it on first use. Caller must hold the binding's owning lock.
func (b *Binding) Alias(row int) (*sample.Alias, error) {
	if a, ok := b.rowAlias[row]; ok {
		return a, nil
	}
	a, err := b.buildRow(row)
	if err != nil {
		return nil, err
	}
	b.rowAlias[row] = a
	return a, nil
}

// buildRow assembles the report distribution for one row without ever
// materializing the customized matrix:
//
//   - leaf precision, empty prune set: the source's own shared per-row
//     alias cache serves directly (byte-accounted in the engine LRU for
//     forest entries);
//   - leaf precision, pruned: the matrix row minus the dropped columns,
//     renormalized (Sec. 4.3) inside the alias build;
//   - coarser precision: the Equ. 17 aggregation restricted to the rows
//     of the drawn-from group — weight_j = Σ_{u∈g_row} p_u/mass_u ·
//     Σ_{v∈g_j} z[u][v], with the constant 1/p_row dropped since the
//     alias build normalizes.
func (b *Binding) buildRow(row int) (*sample.Alias, error) {
	if b.pol.PrecisionLevel == 0 {
		orig := b.leafIdx[b.nodes[row]]
		if len(b.pruned) == 0 {
			a, err := b.src.SharedAliasRow(orig)
			if err != nil {
				return nil, fmt.Errorf("%w: row %v: %v", ErrUnsampleable, b.nodes[row], err)
			}
			return a, nil
		}
		a, _, err := sample.NewSubset(b.src.MatrixRow(orig), b.dropIdx)
		if err != nil {
			return nil, fmt.Errorf("%w: row %v: %v", ErrUnsampleable, b.nodes[row], err)
		}
		return a, nil
	}

	weights, err := b.precisionWeights(row)
	if err != nil {
		return nil, err
	}
	a, err := sample.New(weights)
	if err != nil {
		return nil, fmt.Errorf("%w: precision row %v: %v", ErrUnsampleable, b.nodes[row], err)
	}
	return a, nil
}

// precisionWeights materializes the Equ. 17 aggregated weight vector for
// one precision-group row. It is the single implementation behind both the
// live draw path (buildRow) and lease detachment (DetachRow): the float
// operation order here is what makes a client-rebuilt alias table
// bit-identical to the server's — sample.New over equal float64 inputs
// yields equal tables, so equality must hold at the weight vector, not
// just mathematically.
func (b *Binding) precisionWeights(row int) ([]float64, error) {
	weights := make([]float64, len(b.nodes))
	for _, u := range b.groups[row] { // u indexes keptLeaves
		orig := b.keep[u]
		r := b.src.MatrixRow(orig)
		removed := 0.0
		for l, dropped := range b.dropIdx {
			if dropped {
				removed += r[l]
			}
		}
		mass := 1 - removed
		if mass < minMass {
			return nil, fmt.Errorf("%w: row %v retains %.3g probability mass after pruning",
				ErrUnsampleable, b.keptLeaves[u], mass)
		}
		pu := b.priors.Of(b.tree, b.keptLeaves[u])
		scale := pu / mass
		for j, gj := range b.groups {
			sum := 0.0
			for _, v := range gj {
				sum += r[b.keep[v]]
			}
			weights[j] += scale * sum
		}
	}
	return weights, nil
}

// DetachRow materializes the exact weight vector one report row samples
// from, in the representation a client alias build needs: weights over
// Nodes(), index-aligned. Each arm reproduces the corresponding buildRow
// arm's inputs to sample.New bit for bit:
//
//   - leaf precision, empty prune set: a copy of the full matrix row
//     (the shared alias cache is sample.New over exactly that row);
//   - leaf precision, pruned: the kept columns in keep order with
//     NewSubset's minMass admission check (NewSubset feeds sample.New the
//     same vector);
//   - coarser precision: precisionWeights, shared with buildRow.
//
// A row that buildRow would refuse (degenerate after pruning) returns
// ErrUnsampleable.
func (b *Binding) DetachRow(row int) ([]float64, error) {
	if b.pol.PrecisionLevel > 0 {
		return b.precisionWeights(row)
	}
	orig := b.leafIdx[b.nodes[row]]
	r := b.src.MatrixRow(orig)
	if len(b.pruned) == 0 {
		return append([]float64(nil), r...), nil
	}
	removed := 0.0
	for j, d := range b.dropIdx {
		if d {
			removed += r[j]
		}
	}
	if 1-removed < minMass {
		return nil, fmt.Errorf("%w: row %v retains %.3g probability mass after pruning",
			ErrUnsampleable, b.nodes[row], 1-removed)
	}
	weights := make([]float64, len(b.keep))
	for i, j := range b.keep {
		weights[i] = r[j]
	}
	return weights, nil
}

// Row returns the normalized report distribution for one row — the
// Mechanism contract's "normalized weight row": non-negative entries over
// Nodes() summing to 1. The draw paths never call it (alias tables build
// from the unnormalized vectors so their thresholds stay byte-stable);
// it serves audits, the evaluation harness, and the fuzzed row contract.
func (b *Binding) Row(row int) ([]float64, error) {
	w, err := b.DetachRow(row)
	if err != nil {
		return nil, err
	}
	out := append([]float64(nil), w...)
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("%w: row %v has no positive mass", ErrUnsampleable, b.nodes[row])
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// EvalPreferences returns the leaves of the subtree that fail the policy's
// preferences — the prune set S (step 2 of Fig. 8). attrs must cover every
// leaf it is asked about.
func EvalPreferences(leaves []loctree.NodeID, pol policy.Policy,
	attrs map[loctree.NodeID]policy.Attributes) ([]loctree.NodeID, error) {
	var pruned []loctree.NodeID
	for _, leaf := range leaves {
		a, ok := attrs[leaf]
		if !ok {
			return nil, fmt.Errorf("mechanism: no attributes for leaf %v", leaf)
		}
		allowed, err := pol.Allowed(a)
		if err != nil {
			return nil, fmt.Errorf("mechanism: evaluating %v: %w", leaf, err)
		}
		if !allowed {
			pruned = append(pruned, leaf)
		}
	}
	return pruned, nil
}

// GroupByAncestor partitions leaf indices by their ancestor at the given
// level, preserving first-seen ancestor order. Every precision-grouping
// consumer (bindings here, the user-side Algorithm 4 path) derives its
// grouping from this one implementation.
func GroupByAncestor(tree *loctree.Tree, leaves []loctree.NodeID, level int) ([][]int, []loctree.NodeID, error) {
	order := make([]loctree.NodeID, 0)
	groups := map[loctree.NodeID][]int{}
	for i, leaf := range leaves {
		anc, ok := tree.AncestorAt(leaf, level)
		if !ok {
			return nil, nil, fmt.Errorf("mechanism: no ancestor of %v at level %d", leaf, level)
		}
		if _, seen := groups[anc]; !seen {
			order = append(order, anc)
		}
		groups[anc] = append(groups[anc], i)
	}
	out := make([][]int, len(order))
	for gi, anc := range order {
		out[gi] = groups[anc]
	}
	return out, order, nil
}
