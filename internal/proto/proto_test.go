package proto

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
)

func newTestServer(t *testing.T) (*httptest.Server, *core.Server, *loctree.Priors) {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		t.Fatal(err)
	}
	priors := loctree.UniformPriors(tree)
	leaves := tree.LevelNodes(0)
	targets := []geo.LatLng{tree.Center(leaves[0]), tree.Center(leaves[20]), tree.Center(leaves[40])}
	srv, err := core.NewServer(tree, priors, targets, []float64{1, 1, 1}, core.Params{
		Epsilon: 15, Iterations: 2, UseGraphApprox: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv, priors, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(h.Mux()), srv, priors
}

func TestNewHandlerValidation(t *testing.T) {
	if _, err := NewHandler(nil, nil, 0.1); err == nil {
		t.Error("nil server must fail")
	}
}

func TestFullClientServerRoundTrip(t *testing.T) {
	ts, _, _ := newTestServer(t)
	defer ts.Close()
	c := NewClient(ts.URL)

	tree, tr, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Epsilon != 15 || tr.Height != 2 {
		t.Errorf("tree response: %+v", tr)
	}
	if tree.NumLeaves() != 49 {
		t.Fatalf("rebuilt tree has %d leaves", tree.NumLeaves())
	}
	priors, err := c.FetchPriors(tree)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := c.FetchForest(tree, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Entries) != 7 {
		t.Fatalf("forest has %d entries", len(forest.Entries))
	}
	// Full user-side pipeline over the wire-rebuilt forest.
	pol := policy.Policy{PrivacyLevel: 1, PrecisionLevel: 0}
	out, err := core.GenerateObfuscatedLocation(tree, forest, geo.SanFrancisco.Center(),
		pol, nil, priors, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Contains(out.Reported) {
		t.Fatalf("reported %v not in tree", out.Reported)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	ts, _, _ := newTestServer(t)
	defer ts.Close()

	// Wrong methods.
	resp, err := http.Post(ts.URL+"/v1/tree", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/tree -> %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/matrices -> %d", resp.StatusCode)
	}
	// Malformed body.
	resp, err = http.Post(ts.URL+"/v1/matrices", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON -> %d", resp.StatusCode)
	}
	// Invalid privacy level surfaces as unprocessable.
	resp, err = http.Post(ts.URL+"/v1/matrices", "application/json",
		strings.NewReader(`{"privacy_l": 9, "delta": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad level -> %d", resp.StatusCode)
	}
	// Client error paths.
	c := NewClient(ts.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchForest(tree, 9, 1); err == nil {
		t.Error("client must surface server rejection")
	}
}
