package proto

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"corgi/internal/loctree"
	"corgi/internal/registry"
)

// newMultiTestServer serves two cheap uniform-prior regions.
func newMultiTestServer(t *testing.T) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg, err := registry.New([]registry.Spec{
		{Name: "sf", CenterLat: 37.765, CenterLng: -122.435, Height: 2,
			Iterations: 1, Targets: 3, UniformPriors: true},
		{Name: "nyc", CenterLat: 40.7128, CenterLng: -74.0060, Height: 2,
			Iterations: 1, Targets: 3, UniformPriors: true},
	}, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewMultiHandler(reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h.Mux())
	t.Cleanup(ts.Close)
	return ts, reg
}

func TestNewMultiHandlerValidation(t *testing.T) {
	if _, err := NewMultiHandler(nil); err == nil {
		t.Error("nil registry must fail")
	}
}

func TestRegionsEndpointDoesNotBootstrap(t *testing.T) {
	ts, reg := newMultiTestServer(t)
	c := NewClient(ts.URL)
	rr, err := c.FetchRegions()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Default != "sf" || len(rr.Regions) != 2 {
		t.Fatalf("regions response: %+v", rr)
	}
	for _, info := range rr.Regions {
		if info.Ready {
			t.Errorf("region %q ready before any request", info.Name)
		}
	}
	if reg.Bootstraps() != 0 {
		t.Error("listing regions must not bootstrap shards")
	}
}

func TestRegionAddressedRoundTrip(t *testing.T) {
	ts, reg := newMultiTestServer(t)

	// A region-pinned client sees its own tree and forest.
	c := NewRegionClient(ts.URL, "nyc")
	tree, info, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	if info.OriginLat < 40 || info.OriginLat > 41 {
		t.Errorf("nyc tree origin lat %v", info.OriginLat)
	}
	if _, err := c.FetchPriors(tree); err != nil {
		t.Fatal(err)
	}
	forest, err := c.FetchForest(tree, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Entries) != 7 {
		t.Fatalf("forest has %d entries", len(forest.Entries))
	}
	if reg.Ready("sf") {
		t.Error("sf must stay cold while only nyc is queried")
	}

	// A legacy client (no region) lands on the default region.
	legacy := NewClient(ts.URL)
	ltree, linfo, err := legacy.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	if linfo.OriginLat > 40 {
		t.Errorf("default region resolved to lat %v, want sf", linfo.OriginLat)
	}
	if _, err := legacy.FetchForest(ltree, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !reg.Ready("sf") {
		t.Error("default-region request must bootstrap sf")
	}
}

func TestUnknownRegion404ListsAvailable(t *testing.T) {
	ts, _ := newMultiTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/tree?region=atlantis")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown region -> %d, want 404", resp.StatusCode)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if !strings.Contains(body.String(), "sf") || !strings.Contains(body.String(), "nyc") {
		t.Errorf("404 body must list available regions, got %q", body.String())
	}

	// The same failure through the client API.
	c := NewRegionClient(ts.URL, "atlantis")
	_, _, err = c.FetchTree()
	if err == nil || !strings.Contains(err.Error(), "nyc") {
		t.Errorf("client error must carry the region list, got %v", err)
	}
}

func TestForestGETQueryParams(t *testing.T) {
	ts, _ := newMultiTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/forest?region=sf&privacy_l=1&delta=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET forest -> %d", resp.StatusCode)
	}
	var fr ForestResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if fr.PrivacyLevel != 1 || fr.Delta != 1 || len(fr.Entries) != 7 {
		t.Errorf("GET forest: level %d delta %d entries %d", fr.PrivacyLevel, fr.Delta, len(fr.Entries))
	}

	resp, err = http.Get(ts.URL + "/v1/forest?privacy_l=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad privacy_l -> %d, want 400", resp.StatusCode)
	}

	// The legacy route keeps its POST-only contract.
	resp, err = http.Get(ts.URL + "/v1/matrices?region=sf&privacy_l=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/matrices -> %d, want 405", resp.StatusCode)
	}
}

func TestBatchPerItemErrorsAndV2(t *testing.T) {
	ts, _ := newMultiTestServer(t)
	c := NewClient(ts.URL)

	items := []BatchItem{
		{Region: "sf", PrivacyLevel: 1, Delta: 0},
		{Region: "nyc", PrivacyLevel: 1, Delta: 1},
		{Region: "atlantis", PrivacyLevel: 1, Delta: 0}, // unknown region
		{Region: "sf", PrivacyLevel: 9, Delta: 0},       // bad level
		{PrivacyLevel: 2, Delta: 0},                     // default region
	}
	br, err := c.FetchForestBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != len(items) {
		t.Fatalf("batch returned %d items for %d requests", len(br.Items), len(items))
	}

	// Successful items carry v2 payloads (the client advertises v2).
	trees := map[string]*loctree.Tree{}
	for _, name := range []string{"sf", "nyc"} {
		tree, _, err := NewRegionClient(ts.URL, name).FetchTree()
		if err != nil {
			t.Fatal(err)
		}
		trees[name] = tree
	}
	for _, i := range []int{0, 1, 4} {
		item := br.Items[i]
		if item.Status != http.StatusOK || item.Error != "" {
			t.Fatalf("item %d failed: %+v", i, item)
		}
		if item.ForestV2 == nil || item.Forest != nil {
			t.Fatalf("item %d must carry a v2 payload, got %+v", i, item)
		}
		forest, err := item.Decode(trees[item.Region])
		if err != nil {
			t.Fatalf("item %d decode: %v", i, err)
		}
		if len(forest.Entries) == 0 {
			t.Fatalf("item %d decoded empty forest", i)
		}
	}
	// Item 4 named no region; the server must resolve and report "sf".
	if br.Items[4].Region != "sf" {
		t.Errorf("defaulted item region %q, want sf", br.Items[4].Region)
	}

	// Failed items report independently and precisely.
	if br.Items[2].Status != http.StatusNotFound ||
		!strings.Contains(br.Items[2].Error, "nyc") {
		t.Errorf("unknown-region item: %+v", br.Items[2])
	}
	if br.Items[3].Status != http.StatusUnprocessableEntity {
		t.Errorf("bad-level item: %+v", br.Items[3])
	}
	for _, i := range []int{2, 3} {
		if br.Items[i].Forest != nil || br.Items[i].ForestV2 != nil {
			t.Errorf("failed item %d carries a payload", i)
		}
		if _, err := br.Items[i].Decode(trees["sf"]); err == nil {
			t.Errorf("decoding failed item %d must error", i)
		}
	}
}

func TestBatchContentNegotiationAndGzip(t *testing.T) {
	ts, _ := newMultiTestServer(t)
	body := `{"items": [{"region": "sf", "privacy_l": 1, "delta": 0}]}`

	// Plain JSON Accept: dense v1 payloads, identity encoding.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/forests", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Encoding"); got != "" {
		t.Errorf("unsolicited Content-Encoding %q", got)
	}
	var v1 BatchForestResponse
	if err := json.NewDecoder(resp.Body).Decode(&v1); err != nil {
		t.Fatal(err)
	}
	if v1.Items[0].Forest == nil || v1.Items[0].ForestV2 != nil {
		t.Fatalf("v1 negotiation returned %+v", v1.Items[0])
	}

	// V2 Accept + gzip Accept-Encoding: compact payloads, gzip framing.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/forests", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", ContentTypeForestV2)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err = http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", got)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v2 BatchForestResponse
	if err := json.NewDecoder(gz).Decode(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Items[0].ForestV2 == nil || v2.Items[0].Forest != nil {
		t.Fatalf("v2 negotiation returned %+v", v2.Items[0])
	}
}

func TestBatchLimits(t *testing.T) {
	ts, _ := newMultiTestServer(t)
	c := NewClient(ts.URL)

	if _, err := c.FetchForestBatch(nil); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Errorf("empty batch: %v", err)
	}
	big := make([]BatchItem, DefaultMaxBatch+1)
	for i := range big {
		big[i] = BatchItem{Region: "sf", PrivacyLevel: 1}
	}
	if _, err := c.FetchForestBatch(big); err == nil ||
		!strings.Contains(err.Error(), "413") {
		t.Errorf("oversized batch: %v", err)
	}

	resp, err := http.Post(ts.URL+"/v1/forests", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch body -> %d", resp.StatusCode)
	}
}

func TestMultiStats(t *testing.T) {
	ts, _ := newMultiTestServer(t)
	c := NewRegionClient(ts.URL, "nyc")
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchForest(tree, 1, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ms MultiStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if ms.Bootstraps != 1 {
		t.Errorf("bootstraps %d, want 1", ms.Bootstraps)
	}
	if _, ok := ms.Regions["nyc"]; !ok {
		t.Errorf("stats missing nyc shard: %+v", ms.Regions)
	}
	if _, ok := ms.Regions["sf"]; ok {
		t.Error("cold sf shard must not appear in stats")
	}
	if ms.Total.Solves != ms.Regions["nyc"].Solves || ms.Total.Solves == 0 {
		t.Errorf("aggregate solves %d vs nyc %d", ms.Total.Solves, ms.Regions["nyc"].Solves)
	}
}
