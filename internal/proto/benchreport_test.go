package proto

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"corgi/internal/hexgrid"
	"corgi/internal/policy"
	"corgi/internal/registry"
	"corgi/internal/sample"
)

// BenchmarkReportEndpoint measures the full /v1/report wire path — HTTP,
// policy validation, session lookup, alias draw, JSON response — against
// an in-process server with a warm shard.
func BenchmarkReportEndpoint(b *testing.B) {
	reg, err := registry.New(reportSpecs("bench-report"), registry.Options{})
	if err != nil {
		b.Fatal(err)
	}
	h, err := NewMultiHandler(reg)
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(h.Mux())
	defer srv.Close()
	c := NewClient(srv.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		b.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[0]
	req := ReportRequest{
		Region: "bench-report",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   1,
	}
	if _, err := c.Report(req); err != nil { // absorb bootstrap + first solve
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Report(req); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPR4Report is the BENCH_pr4.json shape consumed by CI: the report
// pipeline's value in a handful of numbers — O(1) alias draws vs the old
// linear scan, and the serving throughput of local (in-process) vs remote
// (HTTP) report draws over the PR 3 three-region setup.
type benchPR4Report struct {
	// AliasNsPerDraw / LinearNsPerDraw time one draw from an n-entry row.
	N               int     `json:"row_dim"`
	AliasNsPerDraw  float64 `json:"alias_ns_per_draw"`
	LinearNsPerDraw float64 `json:"linear_ns_per_draw"`
	// Speedup = linear / alias; the acceptance bar is >= 10 at n >= 1024.
	Speedup float64 `json:"alias_speedup"`
	// LocalReportsPerSec / RemoteReportsPerSec are closed-loop draw rates
	// through registry.Report and POST /v1/report respectively.
	LocalReportsPerSec  float64 `json:"local_reports_per_sec"`
	RemoteReportsPerSec float64 `json:"remote_reports_per_sec"`
	Regions             int     `json:"regions"`
}

// timePerDraw measures ns/draw over enough iterations to be stable.
func timePerDraw(draw func()) float64 {
	const iters = 200000
	start := time.Now()
	for i := 0; i < iters; i++ {
		draw()
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// TestBenchReportPR4 writes BENCH_pr4.json for the CI benchmark artifact.
// It is skipped unless BENCH_PR4_OUT names the output path, so regular
// test runs stay fast.
func TestBenchReportPR4(t *testing.T) {
	out := os.Getenv("BENCH_PR4_OUT")
	if out == "" {
		t.Skip("set BENCH_PR4_OUT=path to generate the benchmark report")
	}

	// Alias vs linear scan on a large row (the acceptance floor is n >=
	// 1024; the paper's height-3 subtrees are 343, so this is the scale
	// the repo grows toward).
	const n = 1024
	rng := rand.New(rand.NewSource(9))
	row := make([]float64, n)
	total := 0.0
	for i := range row {
		row[i] = rng.Float64()
		total += row[i]
	}
	for i := range row {
		row[i] /= total
	}
	a, err := sample.New(row)
	if err != nil {
		t.Fatal(err)
	}
	// The linear baseline is the inverse-CDF scan the report path used
	// before alias tables (obf.Matrix.SampleRow, removed once every caller
	// routed through internal/mechanism), reproduced here for the
	// comparison.
	linearScan := func(rng *rand.Rand) int {
		u := rng.Float64()
		acc, last := 0.0, 0
		for j, v := range row {
			if v <= 0 {
				continue
			}
			acc += v
			last = j
			if u < acc {
				return j
			}
		}
		return last
	}
	drawRng := rand.New(rand.NewSource(1))
	aliasNs := timePerDraw(func() { a.Draw(drawRng) })
	linearNs := timePerDraw(func() { linearScan(drawRng) })
	speedup := linearNs / aliasNs
	if speedup < 10 {
		t.Fatalf("alias draws only %.1fx faster than linear scan at n=%d (acceptance: >= 10x)", speedup, n)
	}

	// Local vs remote report throughput over the PR 3 three-region setup.
	specs := reportSpecs("bench-a", "bench-b", "bench-c")
	reg, err := registry.New(specs, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := reg.BootstrapAll(ctx); err != nil {
		t.Fatal(err)
	}
	type target struct {
		region string
		cell   [2]int
	}
	var targets []target
	for _, spec := range specs {
		sh, err := reg.Shard(ctx, spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, leaf := range sh.Server.Tree().LevelNodes(0)[:8] {
			targets = append(targets, target{spec.Name, [2]int{leaf.Coord.Q, leaf.Coord.R}})
		}
	}
	mkReq := func(tg target, uid int64) registry.ReportRequest {
		return registry.ReportRequest{
			Region: tg.region,
			Cell:   hexgrid.Coord{Q: tg.cell[0], R: tg.cell[1]},
			UID:    uid,
			Policy: policy.Policy{PrivacyLevel: 1},
			Seed:   uid,
		}
	}
	// Warm every (region, subtree) entry so both loops measure steady
	// state, not LP solves.
	for i, tg := range targets {
		if _, err := reg.Report(ctx, mkReq(tg, int64(i%32))); err != nil {
			t.Fatal(err)
		}
	}

	const window = 2 * time.Second
	localStart := time.Now()
	localReqs := 0
	for time.Since(localStart) < window {
		tg := targets[localReqs%len(targets)]
		if _, err := reg.Report(ctx, mkReq(tg, int64(localReqs%32))); err != nil {
			t.Fatal(err)
		}
		localReqs++
	}
	localRate := float64(localReqs) / time.Since(localStart).Seconds()

	h, err := NewMultiHandler(reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Mux())
	defer srv.Close()
	c := NewClient(srv.URL)
	remoteStart := time.Now()
	remoteReqs := 0
	for time.Since(remoteStart) < window {
		tg := targets[remoteReqs%len(targets)]
		if _, err := c.Report(ReportRequest{
			Region: tg.region,
			Cell:   tg.cell,
			UID:    int64(remoteReqs % 32),
			Policy: policy.Policy{PrivacyLevel: 1},
			Seed:   int64(remoteReqs % 32),
		}); err != nil {
			t.Fatal(err)
		}
		remoteReqs++
	}
	remoteRate := float64(remoteReqs) / time.Since(remoteStart).Seconds()

	rep := benchPR4Report{
		N:                   n,
		AliasNsPerDraw:      math.Round(aliasNs*100) / 100,
		LinearNsPerDraw:     math.Round(linearNs*100) / 100,
		Speedup:             math.Round(speedup*10) / 10,
		LocalReportsPerSec:  math.Round(localRate),
		RemoteReportsPerSec: math.Round(remoteRate),
		Regions:             len(specs),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_pr4: %s\n", data)
}
