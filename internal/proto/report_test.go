package proto

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"corgi/internal/budget"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/registry"
	"corgi/internal/session"
)

func reportSpecs(names ...string) []registry.Spec {
	specs := make([]registry.Spec, len(names))
	for i, name := range names {
		specs[i] = registry.Spec{
			Name:      name,
			CenterLat: 37.765 + float64(i),
			CenterLng: -122.435,
			Height:    2, Iterations: 1, Targets: 3,
			UniformPriors: true,
		}
	}
	return specs
}

func reportServer(t *testing.T, names ...string) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg, err := registry.New(reportSpecs(names...), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewMultiHandler(reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)
	return srv, reg
}

func TestReportRoundTrip(t *testing.T) {
	srv, _ := reportServer(t, "ra", "rb")
	c := NewClient(srv.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[0]
	resp, err := c.Report(ReportRequest{
		Region: "ra",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   7,
		Count:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Region != "ra" || len(resp.Reports) != 5 || resp.PrecisionLevel != 0 {
		t.Fatalf("response: %+v", resp)
	}
	for _, rep := range resp.Reports {
		if rep.Lat == 0 && rep.Lng == 0 {
			t.Fatalf("report without a center: %+v", rep)
		}
	}
}

// TestReportRemoteEqualsLocal is the acceptance property: a seeded remote
// report equals the local-sampling report for the same (region, cell,
// policy, seed). The local side fetches the same forest over the dense v1
// encoding (bit-exact float64 round trip) and draws through an
// internal/session with the same seed.
func TestReportRemoteEqualsLocal(t *testing.T) {
	srv, _ := reportServer(t, "ra")
	const (
		seed  = int64(424242)
		count = 16
	)
	pol := policy.Policy{PrivacyLevel: 2}

	c := NewRegionClient(srv.URL, "ra")
	c.ForceV1 = true // quantization-free so both sides see identical rows
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	priors, err := c.FetchPriors(tree)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[10]

	// Remote: the server draws from its session.
	remote, err := c.Report(ReportRequest{
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: pol,
		Seed:   seed,
		Count:  count,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Local: fetch the forest, bind the same session shape, draw.
	forest, err := c.FetchForest(tree, pol.PrivacyLevel, 0)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := tree.AncestorAt(leaf, pol.PrivacyLevel)
	sess, err := session.New(session.Config{
		Tree:   tree,
		Entry:  forest.Entries[root],
		Delta:  forest.Delta,
		Policy: pol,
		Priors: priors,
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.DrawCellN(leaf, count)
	if err != nil {
		t.Fatal(err)
	}

	if len(remote.Reports) != len(local) {
		t.Fatalf("remote drew %d, local %d", len(remote.Reports), len(local))
	}
	for i := range local {
		if remote.Reports[i].Q != local[i].Coord.Q || remote.Reports[i].R != local[i].Coord.R {
			t.Fatalf("draw %d diverged: remote (%d,%d) vs local %v",
				i, remote.Reports[i].Q, remote.Reports[i].R, local[i])
		}
	}
}

func TestReportBatchPerItemStatuses(t *testing.T) {
	srv, _ := reportServer(t, "ra")
	c := NewClient(srv.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[0]
	good := ReportRequest{
		Region: "ra",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: policy.Policy{PrivacyLevel: 1},
	}
	badRegion := good
	badRegion.Region = "nope"
	badPolicy := good
	badPolicy.Policy = policy.Policy{PrivacyLevel: 99}
	badCell := good
	badCell.Cell = [2]int{9999, 9999}

	resp, err := c.ReportBatch([]ReportRequest{good, badRegion, badPolicy, badCell})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{http.StatusOK, http.StatusNotFound,
		http.StatusUnprocessableEntity, http.StatusUnprocessableEntity}
	for i, item := range resp.Items {
		if item.Status != want[i] {
			t.Fatalf("item %d status %d (%s), want %d", i, item.Status, item.Error, want[i])
		}
		if (item.Report != nil) != (item.Status == http.StatusOK) {
			t.Fatalf("item %d payload/status mismatch: %+v", i, item)
		}
	}
}

func TestReportLimitsAndMethods(t *testing.T) {
	srv, reg := reportServer(t, "ra")
	c := NewClient(srv.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[0]

	// Count beyond the handler cap is a per-request rejection.
	_, err = c.Report(ReportRequest{
		Region: "ra",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: policy.Policy{PrivacyLevel: 1},
		Count:  DefaultMaxReportCount + 1,
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized count: %v", err)
	}

	// GET is rejected on both routes.
	for _, path := range []string{"/v1/report", "/v1/reports"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s -> %d", path, resp.StatusCode)
		}
	}

	// Oversized batches are rejected whole.
	items := make([]ReportRequest, DefaultMaxBatch+1)
	for i := range items {
		items[i] = ReportRequest{Region: "ra", Cell: [2]int{leaf.Coord.Q, leaf.Coord.R},
			Policy: policy.Policy{PrivacyLevel: 1}}
	}
	if _, err := c.ReportBatch(items); err == nil {
		t.Fatal("oversized batch accepted")
	}

	// Sessions show up in /v1/stats.
	if st := reg.AggregateSessionStats(); st.Created != 0 {
		t.Fatalf("limit probes created sessions: %+v", st)
	}
	if _, err := c.Report(ReportRequest{Region: "ra",
		Cell: [2]int{leaf.Coord.Q, leaf.Coord.R}, Policy: policy.Policy{PrivacyLevel: 1}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if !strings.Contains(body, "sessions_total") || !strings.Contains(body, "alias_builds") {
		t.Fatalf("stats missing report-pipeline counters: %s", body)
	}
}

// TestReportTrajectoryRemoteEqualsLocalAcrossReanchor extends the
// remote/local equivalence guarantee to moving users: a seeded session
// replaying the same move sequence — including a subtree crossing that
// re-anchors the server-side session — yields identical draws locally
// (session.New + Rebind) and via /v1/report.
func TestReportTrajectoryRemoteEqualsLocalAcrossReanchor(t *testing.T) {
	srv, _ := reportServer(t, "ra")
	const (
		seed  = int64(1337)
		count = 4
	)
	pol := policy.Policy{PrivacyLevel: 1}

	c := NewRegionClient(srv.URL, "ra")
	c.ForceV1 = true // quantization-free so both sides see identical rows
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	priors, err := c.FetchPriors(tree)
	if err != nil {
		t.Fatal(err)
	}
	rootA, rootB := tree.LevelNodes(1)[0], tree.LevelNodes(1)[1]
	leafA := tree.LeavesUnder(rootA)[0]
	leafB := tree.LeavesUnder(rootB)[0]
	moves := []struct {
		leaf      loctree.NodeID
		reanchors bool
	}{
		{leafA, false}, {leafA, false}, {leafB, true}, {leafA, true},
	}

	// Remote: one (uid, seed, policy) stream across the whole trajectory.
	var remote []ReportedLocation
	for i, mv := range moves {
		resp, err := c.Report(ReportRequest{
			Cell:   [2]int{mv.leaf.Coord.Q, mv.leaf.Coord.R},
			UID:    3,
			Policy: pol,
			Seed:   seed,
			Count:  count,
		})
		if err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		if resp.Reanchored != mv.reanchors {
			t.Fatalf("move %d: reanchored = %v, want %v", i, resp.Reanchored, mv.reanchors)
		}
		remote = append(remote, resp.Reports...)
	}

	// Local: the same forest (delta 0 covers every level-1 subtree), one
	// session re-anchored along the same moves.
	forest, err := c.FetchForest(tree, pol.PrivacyLevel, 0)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := session.New(session.Config{
		Tree: tree, Entry: forest.Entries[rootA], Delta: forest.Delta,
		Policy: pol, Priors: priors, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var local []loctree.NodeID
	current := rootA
	for i, mv := range moves {
		root, _ := tree.AncestorAt(mv.leaf, pol.PrivacyLevel)
		if root != current {
			if err := sess.Rebind(session.Rebind{Entry: forest.Entries[root], Delta: forest.Delta}); err != nil {
				t.Fatalf("move %d rebind: %v", i, err)
			}
			current = root
		}
		draws, err := sess.DrawCellN(mv.leaf, count)
		if err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		local = append(local, draws...)
	}

	if len(remote) != len(local) {
		t.Fatalf("remote drew %d, local %d", len(remote), len(local))
	}
	for i := range local {
		if remote[i].Q != local[i].Coord.Q || remote[i].R != local[i].Coord.R {
			t.Fatalf("draw %d diverged across re-anchor: remote (%d,%d) vs local %v",
				i, remote[i].Q, remote[i].R, local[i])
		}
	}
}

// TestReportBudget429 drives a budget-capped server over the wire: the
// documented 429 must appear exactly when the sliding-window accountant
// says the user's epsilon window is spent, and the stats route must expose
// the budget counters.
func TestReportBudget429(t *testing.T) {
	specs := reportSpecs("ra")
	eps := 15.0 // registry default epsilon for specs that leave it zero
	reg, err := registry.New(specs, registry.Options{
		Budget: budget.Config{LimitEps: 2 * eps, Window: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewMultiHandler(reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[0]
	req := ReportRequest{
		Region: "ra",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		UID:    21,
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   9,
	}
	for i := 0; i < 2; i++ {
		resp, err := c.Report(req)
		if err != nil {
			t.Fatalf("in-budget report %d: %v", i+1, err)
		}
		if !resp.Budgeted || resp.EpsSpent != eps {
			t.Fatalf("budget echo: %+v", resp)
		}
	}
	// Third draw exceeds 2*eps: raw request to pin the exact status code.
	body, _ := json.Marshal(req)
	httpResp, err := http.Post(srv.URL+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget report -> %d, want 429", httpResp.StatusCode)
	}

	// The batch path classifies per item.
	batch, err := c.ReportBatch([]ReportRequest{req, {Region: "ra",
		Cell: req.Cell, UID: 22, Policy: policy.Policy{PrivacyLevel: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Items[0].Status != http.StatusTooManyRequests {
		t.Fatalf("batch item 0 status %d, want 429", batch.Items[0].Status)
	}
	if batch.Items[1].Status != http.StatusOK {
		t.Fatalf("batch item 1 (different user) status %d, want 200", batch.Items[1].Status)
	}

	// budget_* counters surface in /v1/stats.
	statsResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats MultiStatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.BudgetTotal == nil {
		t.Fatal("budget_total missing from /v1/stats")
	}
	if stats.BudgetTotal.Rejections != 2 || stats.BudgetTotal.Charges != 3 {
		t.Fatalf("budget totals: %+v", *stats.BudgetTotal)
	}
	if _, ok := stats.Budget["ra"]; !ok {
		t.Fatal("per-region budget stats missing")
	}
}
