package proto

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"corgi/internal/policy"
	"corgi/internal/registry"
	"corgi/internal/session"
)

func reportSpecs(names ...string) []registry.Spec {
	specs := make([]registry.Spec, len(names))
	for i, name := range names {
		specs[i] = registry.Spec{
			Name:      name,
			CenterLat: 37.765 + float64(i),
			CenterLng: -122.435,
			Height:    2, Iterations: 1, Targets: 3,
			UniformPriors: true,
		}
	}
	return specs
}

func reportServer(t *testing.T, names ...string) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg, err := registry.New(reportSpecs(names...), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewMultiHandler(reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)
	return srv, reg
}

func TestReportRoundTrip(t *testing.T) {
	srv, _ := reportServer(t, "ra", "rb")
	c := NewClient(srv.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[0]
	resp, err := c.Report(ReportRequest{
		Region: "ra",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   7,
		Count:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Region != "ra" || len(resp.Reports) != 5 || resp.PrecisionLevel != 0 {
		t.Fatalf("response: %+v", resp)
	}
	for _, rep := range resp.Reports {
		if rep.Lat == 0 && rep.Lng == 0 {
			t.Fatalf("report without a center: %+v", rep)
		}
	}
}

// TestReportRemoteEqualsLocal is the acceptance property: a seeded remote
// report equals the local-sampling report for the same (region, cell,
// policy, seed). The local side fetches the same forest over the dense v1
// encoding (bit-exact float64 round trip) and draws through an
// internal/session with the same seed.
func TestReportRemoteEqualsLocal(t *testing.T) {
	srv, _ := reportServer(t, "ra")
	const (
		seed  = int64(424242)
		count = 16
	)
	pol := policy.Policy{PrivacyLevel: 2}

	c := NewRegionClient(srv.URL, "ra")
	c.ForceV1 = true // quantization-free so both sides see identical rows
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	priors, err := c.FetchPriors(tree)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[10]

	// Remote: the server draws from its session.
	remote, err := c.Report(ReportRequest{
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: pol,
		Seed:   seed,
		Count:  count,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Local: fetch the forest, bind the same session shape, draw.
	forest, err := c.FetchForest(tree, pol.PrivacyLevel, 0)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := tree.AncestorAt(leaf, pol.PrivacyLevel)
	sess, err := session.New(session.Config{
		Tree:   tree,
		Entry:  forest.Entries[root],
		Delta:  forest.Delta,
		Policy: pol,
		Priors: priors,
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.DrawCellN(leaf, count)
	if err != nil {
		t.Fatal(err)
	}

	if len(remote.Reports) != len(local) {
		t.Fatalf("remote drew %d, local %d", len(remote.Reports), len(local))
	}
	for i := range local {
		if remote.Reports[i].Q != local[i].Coord.Q || remote.Reports[i].R != local[i].Coord.R {
			t.Fatalf("draw %d diverged: remote (%d,%d) vs local %v",
				i, remote.Reports[i].Q, remote.Reports[i].R, local[i])
		}
	}
}

func TestReportBatchPerItemStatuses(t *testing.T) {
	srv, _ := reportServer(t, "ra")
	c := NewClient(srv.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[0]
	good := ReportRequest{
		Region: "ra",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: policy.Policy{PrivacyLevel: 1},
	}
	badRegion := good
	badRegion.Region = "nope"
	badPolicy := good
	badPolicy.Policy = policy.Policy{PrivacyLevel: 99}
	badCell := good
	badCell.Cell = [2]int{9999, 9999}

	resp, err := c.ReportBatch([]ReportRequest{good, badRegion, badPolicy, badCell})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{http.StatusOK, http.StatusNotFound,
		http.StatusUnprocessableEntity, http.StatusUnprocessableEntity}
	for i, item := range resp.Items {
		if item.Status != want[i] {
			t.Fatalf("item %d status %d (%s), want %d", i, item.Status, item.Error, want[i])
		}
		if (item.Report != nil) != (item.Status == http.StatusOK) {
			t.Fatalf("item %d payload/status mismatch: %+v", i, item)
		}
	}
}

func TestReportLimitsAndMethods(t *testing.T) {
	srv, reg := reportServer(t, "ra")
	c := NewClient(srv.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.LevelNodes(0)[0]

	// Count beyond the handler cap is a per-request rejection.
	_, err = c.Report(ReportRequest{
		Region: "ra",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: policy.Policy{PrivacyLevel: 1},
		Count:  DefaultMaxReportCount + 1,
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized count: %v", err)
	}

	// GET is rejected on both routes.
	for _, path := range []string{"/v1/report", "/v1/reports"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s -> %d", path, resp.StatusCode)
		}
	}

	// Oversized batches are rejected whole.
	items := make([]ReportRequest, DefaultMaxBatch+1)
	for i := range items {
		items[i] = ReportRequest{Region: "ra", Cell: [2]int{leaf.Coord.Q, leaf.Coord.R},
			Policy: policy.Policy{PrivacyLevel: 1}}
	}
	if _, err := c.ReportBatch(items); err == nil {
		t.Fatal("oversized batch accepted")
	}

	// Sessions show up in /v1/stats.
	if st := reg.AggregateSessionStats(); st.Created != 0 {
		t.Fatalf("limit probes created sessions: %+v", st)
	}
	if _, err := c.Report(ReportRequest{Region: "ra",
		Cell: [2]int{leaf.Coord.Q, leaf.Coord.R}, Policy: policy.Policy{PrivacyLevel: 1}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if !strings.Contains(body, "sessions_total") || !strings.Contains(body, "alias_builds") {
		t.Fatalf("stats missing report-pipeline counters: %s", body)
	}
}
