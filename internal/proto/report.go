package proto

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"corgi/internal/budget"
	"corgi/internal/hexgrid"
	"corgi/internal/policy"
	"corgi/internal/registry"
)

// DefaultMaxReportCount bounds how many draws one report request may ask
// for; a client wanting more batches requests. It aliases the
// registry-level constant so the HTTP, stream, and lease transports all
// enforce the same limit.
const DefaultMaxReportCount = registry.DefaultMaxReportCount

// ReportRequest asks the server to draw obfuscated reports directly: the
// true leaf cell, the inline customization policy (its fields flatten into
// the request object: privacy_l, precision_l, user_preferences), a user
// id, a seed, and a draw count.
//
// This is the trusted-serving mode of the report pipeline — the cell and
// the policy cross the wire, unlike the forest routes where only (privacy
// level, |S|) does. Clients that must keep the paper's Sec. 5 trust model
// keep using /v1/forest and sample locally; the wire format is shaped so
// the same (region, cell, policy, seed) replayed against a fresh server
// reproduces the local draw sequence exactly.
type ReportRequest struct {
	Region string `json:"region,omitempty"`
	// Cell is the axial (q, r) coordinate of the true leaf cell.
	Cell [2]int `json:"cell"`
	// UID partitions session state and metadata attributes between users.
	UID int64 `json:"uid,omitempty"`
	policy.Policy
	// Seed fixes the per-session RNG stream.
	Seed int64 `json:"seed,omitempty"`
	// Count is how many reports to draw (default 1, bounded by the
	// handler's MaxReportCount).
	Count int `json:"count,omitempty"`
	// Forwarded marks a node-to-node forward inside a cluster: the
	// receiver serves locally instead of re-routing, which bounds every
	// request to at most one forwarding hop.
	Forwarded bool `json:"forwarded,omitempty"`
	// Handoff carries the user's live epsilon spend from the node that
	// owned them before a rebalance or failover; the receiver merges it
	// before charging so the window budget stays coherent across moves.
	Handoff *budget.Handoff `json:"budget_handoff,omitempty"`
}

// ReportedLocation is one drawn report: the node's axial coordinate and
// its center, ready for a location-based service.
type ReportedLocation struct {
	Q   int     `json:"q"`
	R   int     `json:"r"`
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// ReportResponse carries the drawn reports plus the customization facts.
type ReportResponse struct {
	Region string `json:"region"`
	// PrecisionLevel is the tree level of every reported node.
	PrecisionLevel int `json:"precision_l"`
	// SubtreeRoot names the privacy-forest entry that served the draws.
	SubtreeRoot [2]int `json:"subtree_root"`
	// Pruned is how many locations the policy's preferences removed.
	Pruned  int                `json:"pruned"`
	Reports []ReportedLocation `json:"reports"`
	// Reanchored is true when this request moved the user's session onto a
	// different subtree (or preference anchor) — mobility clients and the
	// loadgen use it to measure re-anchor rates.
	Reanchored bool `json:"reanchored,omitempty"`
	// Budgeted is true when the server runs epsilon-budget accounting;
	// EpsSpent is what this request charged and EpsRemaining the user's
	// window headroom after it.
	Budgeted     bool    `json:"budgeted,omitempty"`
	EpsSpent     float64 `json:"eps_spent,omitempty"`
	EpsRemaining float64 `json:"eps_remaining,omitempty"`
	// Degraded is true when the reports were drawn from a planar-Laplace
	// fallback entry (degraded serving): the epsilon guarantee holds in
	// full, but utility is below the LP optimum until the background solve
	// replaces the fallback.
	Degraded bool `json:"degraded,omitempty"`
}

// BatchReportRequest draws for many users/cells in one round trip.
type BatchReportRequest struct {
	Items []ReportRequest `json:"items"`
}

// ReportItemResult is one batch item's outcome; items fail independently
// with per-item HTTP-equivalent statuses, mirroring /v1/forests.
type ReportItemResult struct {
	Status int             `json:"status"`
	Error  string          `json:"error,omitempty"`
	Report *ReportResponse `json:"report,omitempty"`
}

// BatchReportResponse is the batch envelope; HTTP 200 as long as the
// batch itself was well-formed.
type BatchReportResponse struct {
	Items []ReportItemResult `json:"items"`
}

// reportErrStatus maps a report-pipeline error to an HTTP status, shared
// by the single and batch paths. The classification lives in
// registry.ReportErrStatus so the binary stream transport answers from
// the identical table — a given failure is the same class on every wire.
func reportErrStatus(err error) (int, string) {
	return registry.ReportErrStatus(err)
}

// resolveReport translates one wire request into the registry pipeline.
func (h *MultiHandler) resolveReport(ctx context.Context, req ReportRequest) (*ReportResponse, int, string) {
	maxCount := h.MaxReportCount
	if maxCount <= 0 {
		maxCount = DefaultMaxReportCount
	}
	if req.Count > maxCount {
		return nil, http.StatusUnprocessableEntity,
			fmt.Sprintf("count %d exceeds limit %d", req.Count, maxCount)
	}
	res, err := h.handler().Report(ctx, registry.ReportRequest{
		Region:    req.Region,
		Cell:      hexgrid.Coord{Q: req.Cell[0], R: req.Cell[1]},
		UID:       req.UID,
		Policy:    req.Policy,
		Seed:      req.Seed,
		Count:     req.Count,
		Forwarded: req.Forwarded,
		Handoff:   req.Handoff,
	})
	if err != nil {
		status, msg := reportErrStatus(err)
		return nil, status, msg
	}
	defer res.Release()
	resp := &ReportResponse{
		Region:         res.Region,
		PrecisionLevel: res.PrecisionLevel,
		SubtreeRoot:    [2]int{res.SubtreeRoot.Coord.Q, res.SubtreeRoot.Coord.R},
		Pruned:         res.Pruned,
		Reports:        make([]ReportedLocation, len(res.Reports)),
		Reanchored:     res.Reanchored,
		Budgeted:       res.Budgeted,
		EpsSpent:       res.EpsSpent,
		EpsRemaining:   res.EpsRemaining,
		Degraded:       res.Degraded,
	}
	for i, n := range res.Reports {
		c := res.Centers[i]
		resp.Reports[i] = ReportedLocation{Q: n.Coord.Q, R: n.Coord.R, Lat: c.Lat, Lng: c.Lng}
	}
	return resp, http.StatusOK, ""
}

// handleReport serves POST /v1/report: one user's draws. The region rides
// in the body (or ?region= as a fallback, matching the other routes).
func (h *MultiHandler) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ReportRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Region == "" {
		req.Region = r.URL.Query().Get("region")
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	resp, status, msg := h.resolveReport(ctx, req)
	if status != http.StatusOK {
		http.Error(w, msg, status)
		return
	}
	writeJSONPooled(w, r, resp)
}

// handleReports serves POST /v1/reports: a batch of report draws with
// per-item statuses, fanned out concurrently like /v1/forests — each
// shard's engine still bounds its own solve concurrency and the session
// managers serialize per-session draws.
func (h *MultiHandler) handleReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req BatchReportRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	maxBatch := h.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if len(req.Items) == 0 {
		http.Error(w, "batch has no items", http.StatusBadRequest)
		return
	}
	if len(req.Items) > maxBatch {
		http.Error(w, fmt.Sprintf("batch of %d items exceeds limit %d", len(req.Items), maxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()

	resp := BatchReportResponse{Items: make([]ReportItemResult, len(req.Items))}
	var wg sync.WaitGroup
	for i, item := range req.Items {
		wg.Add(1)
		go func(i int, item ReportRequest) {
			defer wg.Done()
			rep, status, msg := h.resolveReport(ctx, item)
			resp.Items[i] = ReportItemResult{Status: status, Error: msg, Report: rep}
		}(i, item)
	}
	wg.Wait()
	writeJSONPooled(w, r, resp)
}

// Report draws obfuscated reports from the server-side pipeline. A client
// with a bound region (NewRegionClient) fills an empty request Region.
func (c *Client) Report(req ReportRequest) (*ReportResponse, error) {
	if req.Region == "" {
		req.Region = c.region
	}
	var resp ReportResponse
	if err := c.postJSON("/v1/report", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ReportBatch draws for many requests in one POST /v1/reports round trip;
// per-item outcomes come back in request order with their own statuses.
// The caller's slice is not modified: a bound region fills empty item
// regions on a copy (matching FetchForestBatch's no-mutation contract).
func (c *Client) ReportBatch(items []ReportRequest) (*BatchReportResponse, error) {
	sent := items
	if c.region != "" {
		sent = append([]ReportRequest(nil), items...)
		for i := range sent {
			if sent[i].Region == "" {
				sent[i].Region = c.region
			}
		}
	}
	var resp BatchReportResponse
	if err := c.postJSON("/v1/reports", BatchReportRequest{Items: sent}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// postJSON posts a JSON body and decodes a JSON response. Every return
// path fully drains the response body first, so the keep-alive connection
// goes back to the transport's pool instead of being torn down — without
// the drain, error responses and decoder-trailing bytes force a fresh TCP
// connection per affected request.
func (c *Client) postJSON(path string, body, v interface{}) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	defer drainBody(resp.Body)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("proto: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
