package proto

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// postForest issues one forest request, optionally conditional, and
// returns the response with its body drained.
func postForest(t *testing.T, url string, level, delta int, accept, ifNoneMatch string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(MatrixRequest{PrivacyLevel: level, Delta: delta})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/matrices", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestForestETagAnd304 drives the conditional-fetch protocol: a forest
// response carries a strong ETag, revalidating with it yields an empty
// 304, and a stale tag yields a full 200.
func TestForestETagAnd304(t *testing.T) {
	ts, _, _ := newTestServer(t)
	defer ts.Close()

	resp, body := postForest(t, ts.URL, 1, 0, ContentTypeForestV2, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if len(etag) < 4 || etag[0] != '"' {
		t.Fatalf("ETag %q is not a quoted strong tag", etag)
	}
	if len(body) == 0 {
		t.Fatal("empty forest body")
	}

	// Same representation, matching tag: 304 with no body.
	resp, body = postForest(t, ts.URL, 1, 0, ContentTypeForestV2, etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional refetch: status %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag %q, want %q", got, etag)
	}

	// A tag list containing the current tag also matches; a stale tag
	// does not.
	resp, _ = postForest(t, ts.URL, 1, 0, ContentTypeForestV2, `"stale", `+etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("tag list: status %d, want 304", resp.StatusCode)
	}
	resp, body = postForest(t, ts.URL, 1, 0, ContentTypeForestV2, `"stale"`)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("stale tag: status %d, %d bytes; want full 200", resp.StatusCode, len(body))
	}

	// Different (level, delta) or a different representation: different tag.
	resp, _ = postForest(t, ts.URL, 1, 1, ContentTypeForestV2, "")
	if other := resp.Header.Get("ETag"); other == etag {
		t.Error("distinct forests share an ETag")
	}
	resp, _ = postForest(t, ts.URL, 1, 0, "application/json", "")
	if v1tag := resp.Header.Get("ETag"); v1tag == etag {
		t.Error("v1 and v2 representations share an ETag")
	}

	// Tags are deterministic: refetching yields the same tag.
	resp, _ = postForest(t, ts.URL, 1, 0, ContentTypeForestV2, "")
	if again := resp.Header.Get("ETag"); again != etag {
		t.Errorf("ETag unstable across fetches: %q then %q", etag, again)
	}

	// The response must declare what it varies on, and the strong tag must
	// name the content coding: a gzipped body (Go's transport advertises
	// gzip by default, so etag above is the gzip variant) tags differently
	// from the identity one a no-gzip client receives.
	if vary := resp.Header.Get("Vary"); !strings.Contains(vary, "Accept-Encoding") || !strings.Contains(vary, "Accept") {
		t.Errorf("Vary %q must list Accept and Accept-Encoding", vary)
	}
	if !strings.Contains(etag, "-gzip") {
		t.Errorf("gzip-negotiated response tag %q lacks the coding suffix", etag)
	}
	plain := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	body2, _ := json.Marshal(MatrixRequest{PrivacyLevel: 1, Delta: 0})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/matrices", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeForestV2)
	presp, err := plain.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	identityTag := presp.Header.Get("ETag")
	if identityTag == etag || strings.Contains(identityTag, "-gzip") {
		t.Errorf("identity tag %q must differ from gzip tag %q without the suffix", identityTag, etag)
	}
}

func TestEtagMatches(t *testing.T) {
	cases := []struct {
		header, etag string
		want         bool
	}{
		{`"abc"`, `"abc"`, true},
		{`"abc", "def"`, `"def"`, true},
		{` "abc" ,"def"`, `"abc"`, true},
		{`*`, `"anything"`, true},
		{`"abc"`, `"def"`, false},
		{`W/"abc"`, `"abc"`, false}, // weak tags never strongly match
		{``, `"abc"`, false},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, c.etag); got != c.want {
			t.Errorf("etagMatches(%q, %q) = %v, want %v", c.header, c.etag, got, c.want)
		}
	}
}

// TestClientConditionalFetch exercises FetchForestTagged end to end: first
// fetch returns a tagged body, revalidation returns NotModified, and the
// cached body decodes to the same forest.
func TestClientConditionalFetch(t *testing.T) {
	ts, _, _ := newTestServer(t)
	defer ts.Close()
	c := NewClient(ts.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}

	res, err := c.FetchForestTagged(tree, 1, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.NotModified || res.Forest == nil || res.ETag == "" || len(res.Body) == 0 {
		t.Fatalf("first fetch: %+v", res)
	}
	if !bytes.Contains([]byte(res.ContentType), []byte(ContentTypeForestV2)) {
		t.Fatalf("client did not negotiate v2: %q", res.ContentType)
	}

	again, err := c.FetchForestTagged(tree, 1, 0, res.ETag)
	if err != nil {
		t.Fatal(err)
	}
	if !again.NotModified || again.Forest != nil {
		t.Fatalf("revalidation: %+v", again)
	}
	if again.ETag != res.ETag {
		t.Errorf("revalidation tag %q, want %q", again.ETag, res.ETag)
	}

	// The cached body is decodable on its own — what cmd/corgi-client
	// does after a 304.
	forest, err := DecodeForestBody(tree, res.ContentType, res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Entries) != len(res.Forest.Entries) {
		t.Fatalf("cached body decoded to %d entries, fetch had %d",
			len(forest.Entries), len(res.Forest.Entries))
	}
}

// TestClientForceV1 checks the escape hatch really downgrades the Accept
// negotiation.
func TestClientForceV1(t *testing.T) {
	ts, _, _ := newTestServer(t)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.ForceV1 = true
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.FetchForestTagged(tree, 1, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains([]byte(res.ContentType), []byte(ContentTypeForestV2)) {
		t.Fatalf("ForceV1 client still negotiated v2: %q", res.ContentType)
	}
	if res.Forest == nil || len(res.Forest.Entries) == 0 {
		t.Fatal("v1 fetch returned no forest")
	}
}

// TestMultiForestETag checks the region-addressed /v1/forest route tags
// responses too, and that distinct regions tag differently.
func TestMultiForestETag(t *testing.T) {
	ts, _ := newMultiTestServer(t)
	defer ts.Close()

	get := func(query string, inm string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/forest?"+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept", ContentTypeForestV2)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, raw
	}
	resp, _ := get("privacy_l=1&delta=0", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("multi route sent no ETag")
	}
	resp, body := get("privacy_l=1&delta=0", etag)
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("multi conditional: status %d, %d bytes", resp.StatusCode, len(body))
	}
}
