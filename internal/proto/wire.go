package proto

import (
	"fmt"

	"corgi/internal/codec"
	"corgi/internal/core"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
)

// Wire format v2 frames the quantized row-sparse matrix encoding of
// internal/codec (see its package comment for the byte layout and error
// bounds): each entry's rows pack into one binary blob, base64-framed by
// JSON. The same blob format is the forest store's at-rest representation
// (internal/store), so a snapshot and a v2 response carry identical matrix
// bytes.

// ContentTypeForestV2 is the negotiated media type for the compact forest
// encoding. Clients request it via Accept; the server confirms it via
// Content-Type. Plain "application/json" keeps the v1 dense encoding.
const ContentTypeForestV2 = "application/x-corgi-forest-v2+json"

// ForestEntryWire2 is one subtree's matrix in the v2 encoding.
type ForestEntryWire2 struct {
	RootQ  int      `json:"root_q"`
	RootR  int      `json:"root_r"`
	Leaves [][2]int `json:"leaves"` // axial coords in matrix order
	Dim    int      `json:"dim"`
	Data   []byte   `json:"data"` // base64 on the wire (encoding/json)
}

// ForestResponseV2 carries the whole privacy forest in the v2 encoding.
type ForestResponseV2 struct {
	PrivacyLevel int                `json:"privacy_l"`
	Delta        int                `json:"delta"`
	Entries      []ForestEntryWire2 `json:"entries"`
}

// EncodeForestV2 converts a generated forest into the compact wire form.
// Entries are emitted in the tree's level-node order for determinism.
func EncodeForestV2(tree *loctree.Tree, forest *core.Forest) (*ForestResponseV2, error) {
	resp := &ForestResponseV2{PrivacyLevel: forest.PrivacyLevel, Delta: forest.Delta}
	for _, node := range tree.LevelNodes(forest.PrivacyLevel) {
		e, ok := forest.Entries[node]
		if !ok {
			return nil, fmt.Errorf("proto: forest missing entry for %v", node)
		}
		data, err := codec.EncodeMatrix(e.Matrix)
		if err != nil {
			return nil, err
		}
		wire := ForestEntryWire2{
			RootQ: node.Coord.Q,
			RootR: node.Coord.R,
			Dim:   e.Matrix.Dim(),
			Data:  data,
		}
		for _, l := range e.Leaves {
			wire.Leaves = append(wire.Leaves, [2]int{l.Coord.Q, l.Coord.R})
		}
		resp.Entries = append(resp.Entries, wire)
	}
	return resp, nil
}

// DecodeForestV2 reassembles a v2 response against the local tree, with the
// same validation as the v1 path (membership, shape, row-stochasticity).
func DecodeForestV2(tree *loctree.Tree, fr *ForestResponseV2) (*core.Forest, error) {
	forest := &core.Forest{
		PrivacyLevel: fr.PrivacyLevel,
		Delta:        fr.Delta,
		Entries:      map[loctree.NodeID]*core.ForestEntry{},
	}
	for _, wire := range fr.Entries {
		root := loctree.NodeID{Level: fr.PrivacyLevel, Coord: hexgrid.Coord{Q: wire.RootQ, R: wire.RootR}}
		if !tree.Contains(root) {
			return nil, fmt.Errorf("proto: entry root %v not in tree", root)
		}
		if wire.Dim != len(wire.Leaves) {
			return nil, fmt.Errorf("proto: entry %v has dim %d for %d leaves", root, wire.Dim, len(wire.Leaves))
		}
		m, err := codec.DecodeMatrix(wire.Data, wire.Dim)
		if err != nil {
			return nil, fmt.Errorf("proto: entry %v: %w", root, err)
		}
		if err := m.CheckStochastic(1e-6); err != nil {
			return nil, fmt.Errorf("proto: entry %v: %w", root, err)
		}
		leaves := make([]loctree.NodeID, len(wire.Leaves))
		for i, qr := range wire.Leaves {
			leaves[i] = loctree.NodeID{Level: 0, Coord: hexgrid.Coord{Q: qr[0], R: qr[1]}}
			if !tree.Contains(leaves[i]) {
				return nil, fmt.Errorf("proto: entry %v leaf %v not in tree", root, leaves[i])
			}
		}
		forest.Entries[root] = &core.ForestEntry{Root: root, Leaves: leaves, Matrix: m}
	}
	return forest, nil
}
