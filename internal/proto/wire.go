package proto

import (
	"encoding/binary"
	"fmt"
	"math"

	"corgi/internal/core"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
)

// Wire format v2: a compact, quantized, row-sparse matrix encoding.
//
// Each matrix entry is a probability in [0, 1], quantized to a 32-bit fixed
// point q = round(v * (2^32 - 1)); the decode error per entry is at most
// 0.5/(2^32-1) ≈ 1.2e-10, far inside the 1e-9 wire tolerance and the 1e-6
// row-stochasticity check. Rows are stored back-to-back in one binary blob
// (JSON-marshaled as base64):
//
//	uint16 n  (little endian)
//	n == 0xFFFF: a dense row follows — dim × uint32 quantized values
//	otherwise:   n sparse entries of (uint16 column, uint32 value)
//
// The encoder picks per row whichever form is smaller. LP basic solutions
// are naturally sparse (few nonzero transitions per row), so the sparse arm
// dominates in practice; even a fully dense matrix is ~4 bytes per entry
// versus ~19 characters of decimal JSON.

// quantScale maps [0,1] onto the full uint32 range.
const quantScale = float64(1<<32 - 1)

// denseRowMark flags a dense row in the per-row header. Matrix dimensions
// must stay below it (the paper's largest tree has 343 leaves).
const denseRowMark = 0xFFFF

// ContentTypeForestV2 is the negotiated media type for the compact forest
// encoding. Clients request it via Accept; the server confirms it via
// Content-Type. Plain "application/json" keeps the v1 dense encoding.
const ContentTypeForestV2 = "application/x-corgi-forest-v2+json"

// ForestEntryWire2 is one subtree's matrix in the v2 encoding.
type ForestEntryWire2 struct {
	RootQ  int      `json:"root_q"`
	RootR  int      `json:"root_r"`
	Leaves [][2]int `json:"leaves"` // axial coords in matrix order
	Dim    int      `json:"dim"`
	Data   []byte   `json:"data"` // base64 on the wire (encoding/json)
}

// ForestResponseV2 carries the whole privacy forest in the v2 encoding.
type ForestResponseV2 struct {
	PrivacyLevel int                `json:"privacy_l"`
	Delta        int                `json:"delta"`
	Entries      []ForestEntryWire2 `json:"entries"`
}

func quantize(v float64) uint32 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return math.MaxUint32
	}
	return uint32(math.Round(v * quantScale))
}

func dequantize(q uint32) float64 { return float64(q) / quantScale }

// encodeMatrixV2 packs a matrix into the v2 binary blob.
func encodeMatrixV2(m *obf.Matrix) ([]byte, error) {
	dim := m.Dim()
	if dim >= denseRowMark {
		return nil, fmt.Errorf("proto: matrix dimension %d exceeds wire v2 limit %d", dim, denseRowMark-1)
	}
	var buf []byte
	qrow := make([]uint32, dim)
	for i := 0; i < dim; i++ {
		row := m.Row(i)
		nnz := 0
		for j, v := range row {
			qrow[j] = quantize(v)
			if qrow[j] != 0 {
				nnz++
			}
		}
		sparseBytes := 2 + 6*nnz
		denseBytes := 2 + 4*dim
		if sparseBytes < denseBytes {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(nnz))
			for j, q := range qrow {
				if q == 0 {
					continue
				}
				buf = binary.LittleEndian.AppendUint16(buf, uint16(j))
				buf = binary.LittleEndian.AppendUint32(buf, q)
			}
		} else {
			buf = binary.LittleEndian.AppendUint16(buf, denseRowMark)
			for _, q := range qrow {
				buf = binary.LittleEndian.AppendUint32(buf, q)
			}
		}
	}
	return buf, nil
}

// decodeMatrixV2 unpacks a v2 blob back into a dense matrix.
func decodeMatrixV2(data []byte, dim int) (*obf.Matrix, error) {
	if dim < 1 || dim >= denseRowMark {
		return nil, fmt.Errorf("proto: wire v2 dimension %d out of range", dim)
	}
	m := obf.NewMatrix(dim)
	off := 0
	need := func(n int) error {
		if off+n > len(data) {
			return fmt.Errorf("proto: wire v2 blob truncated at byte %d", off)
		}
		return nil
	}
	for i := 0; i < dim; i++ {
		if err := need(2); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint16(data[off:])
		off += 2
		row := m.Row(i)
		if n == denseRowMark {
			if err := need(4 * dim); err != nil {
				return nil, err
			}
			for j := 0; j < dim; j++ {
				row[j] = dequantize(binary.LittleEndian.Uint32(data[off:]))
				off += 4
			}
			continue
		}
		if int(n) > dim {
			return nil, fmt.Errorf("proto: wire v2 row %d claims %d entries for dim %d", i, n, dim)
		}
		if err := need(6 * int(n)); err != nil {
			return nil, err
		}
		for k := 0; k < int(n); k++ {
			col := binary.LittleEndian.Uint16(data[off:])
			off += 2
			if int(col) >= dim {
				return nil, fmt.Errorf("proto: wire v2 row %d column %d out of range", i, col)
			}
			row[col] = dequantize(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("proto: wire v2 blob has %d trailing bytes", len(data)-off)
	}
	return m, nil
}

// EncodeForestV2 converts a generated forest into the compact wire form.
// Entries are emitted in the tree's level-node order for determinism.
func EncodeForestV2(tree *loctree.Tree, forest *core.Forest) (*ForestResponseV2, error) {
	resp := &ForestResponseV2{PrivacyLevel: forest.PrivacyLevel, Delta: forest.Delta}
	for _, node := range tree.LevelNodes(forest.PrivacyLevel) {
		e, ok := forest.Entries[node]
		if !ok {
			return nil, fmt.Errorf("proto: forest missing entry for %v", node)
		}
		data, err := encodeMatrixV2(e.Matrix)
		if err != nil {
			return nil, err
		}
		wire := ForestEntryWire2{
			RootQ: node.Coord.Q,
			RootR: node.Coord.R,
			Dim:   e.Matrix.Dim(),
			Data:  data,
		}
		for _, l := range e.Leaves {
			wire.Leaves = append(wire.Leaves, [2]int{l.Coord.Q, l.Coord.R})
		}
		resp.Entries = append(resp.Entries, wire)
	}
	return resp, nil
}

// DecodeForestV2 reassembles a v2 response against the local tree, with the
// same validation as the v1 path (membership, shape, row-stochasticity).
func DecodeForestV2(tree *loctree.Tree, fr *ForestResponseV2) (*core.Forest, error) {
	forest := &core.Forest{
		PrivacyLevel: fr.PrivacyLevel,
		Delta:        fr.Delta,
		Entries:      map[loctree.NodeID]*core.ForestEntry{},
	}
	for _, wire := range fr.Entries {
		root := loctree.NodeID{Level: fr.PrivacyLevel, Coord: hexgrid.Coord{Q: wire.RootQ, R: wire.RootR}}
		if !tree.Contains(root) {
			return nil, fmt.Errorf("proto: entry root %v not in tree", root)
		}
		if wire.Dim != len(wire.Leaves) {
			return nil, fmt.Errorf("proto: entry %v has dim %d for %d leaves", root, wire.Dim, len(wire.Leaves))
		}
		m, err := decodeMatrixV2(wire.Data, wire.Dim)
		if err != nil {
			return nil, fmt.Errorf("proto: entry %v: %w", root, err)
		}
		if err := m.CheckStochastic(1e-6); err != nil {
			return nil, fmt.Errorf("proto: entry %v: %w", root, err)
		}
		leaves := make([]loctree.NodeID, len(wire.Leaves))
		for i, qr := range wire.Leaves {
			leaves[i] = loctree.NodeID{Level: 0, Coord: hexgrid.Coord{Q: qr[0], R: qr[1]}}
			if !tree.Contains(leaves[i]) {
				return nil, fmt.Errorf("proto: entry %v leaf %v not in tree", root, leaves[i])
			}
		}
		forest.Entries[root] = &core.ForestEntry{Root: root, Leaves: leaves, Matrix: m}
	}
	return forest, nil
}
