package proto

// This file is the HTTP face of the draw-lease pipeline (POST /v1/lease):
// the JSON mirror of registry.Lease. Token and bundle travel as base64
// (encoding/json's native []byte form); the bundle's weights stay exact —
// base64 wraps the binary codec, it never re-encodes floats. Budget
// rejections answer 429 with the user's live headroom in the
// X-Corgi-Eps-Remaining header (the JSON-free analogue of the stream
// transport's eps_remaining ERROR-frame field); bad tokens answer 403.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"corgi/internal/budget"
	"corgi/internal/hexgrid"
	"corgi/internal/policy"
	"corgi/internal/registry"
)

// epsRemainingHeader carries the user's live epsilon headroom on
// 429-rejected lease and report requests.
const epsRemainingHeader = "X-Corgi-Eps-Remaining"

// LeaseRequest asks for a client-side draw lease: a report request plus
// the draw cap to pre-pay and an optional renewal token.
type LeaseRequest struct {
	Region string `json:"region,omitempty"`
	// Cell is the axial (q, r) coordinate of the true leaf cell.
	Cell [2]int `json:"cell"`
	UID  int64  `json:"uid,omitempty"`
	policy.Policy
	Seed int64 `json:"seed,omitempty"`
	// Draws is the draw cap to pre-pay (default 1, bounded by the
	// handler's MaxReportCount — the same limit as /v1/report).
	Draws int `json:"draws,omitempty"`
	// Token renews a previous lease (base64 on the wire).
	Token []byte `json:"token,omitempty"`
	// Forwarded and Handoff mirror ReportRequest: cluster-internal
	// one-hop forwarding plus the owner-to-owner budget handoff.
	Forwarded bool            `json:"forwarded,omitempty"`
	Handoff   *budget.Handoff `json:"budget_handoff,omitempty"`
}

// LeaseResponse is an issued lease: the signed token, the encoded bundle,
// and the customization facts a report response would carry.
type LeaseResponse struct {
	Region         string `json:"region"`
	PrecisionLevel int    `json:"precision_l"`
	SubtreeRoot    [2]int `json:"subtree_root"`
	Pruned         int    `json:"pruned"`
	Reanchored     bool   `json:"reanchored,omitempty"`
	// Budgeted / EpsSpent / EpsRemaining mirror ReportResponse, except the
	// spend covers the whole pre-paid draw cap in one charge.
	Budgeted     bool    `json:"budgeted,omitempty"`
	EpsSpent     float64 `json:"eps_spent,omitempty"`
	EpsRemaining float64 `json:"eps_remaining,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
	// DrawCap is the granted cap; RNGPos the stream position the leased
	// window starts at; ExpiresUnixMs the token expiry.
	DrawCap       int    `json:"draw_cap"`
	RNGPos        uint64 `json:"rng_pos"`
	ExpiresUnixMs int64  `json:"expires_unix_ms"`
	Renewed       bool   `json:"renewed,omitempty"`
	// Token is the signed lease token; Bundle the encoded lease bundle
	// (clientdraw.Open consumes both). Base64 on the wire.
	Token  []byte `json:"token"`
	Bundle []byte `json:"bundle"`
}

// leaseResponse converts a registry grant to its wire form.
func leaseResponse(g *registry.LeaseGrant) *LeaseResponse {
	return &LeaseResponse{
		Region:         g.Region,
		PrecisionLevel: g.PrecisionLevel,
		SubtreeRoot:    [2]int{g.SubtreeRoot.Coord.Q, g.SubtreeRoot.Coord.R},
		Pruned:         g.Pruned,
		Reanchored:     g.Reanchored,
		Budgeted:       g.Budgeted,
		EpsSpent:       g.EpsSpent,
		EpsRemaining:   g.EpsRemaining,
		Degraded:       g.Degraded,
		DrawCap:        g.DrawCap,
		RNGPos:         g.RNGPos,
		ExpiresUnixMs:  g.ExpiresAt,
		Renewed:        g.Renewed,
		Token:          g.Token,
		Bundle:         g.Bundle,
	}
}

// handleLease serves POST /v1/lease: issue (or renew) a client-side draw
// lease. The draw cap respects the same MaxReportCount limit as
// /v1/report(+s) — a count the report routes would refuse is refused here.
func (h *MultiHandler) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Region == "" {
		req.Region = r.URL.Query().Get("region")
	}
	maxCount := h.MaxReportCount
	if maxCount <= 0 {
		maxCount = DefaultMaxReportCount
	}
	if req.Draws > maxCount {
		http.Error(w, fmt.Sprintf("count %d exceeds limit %d", req.Draws, maxCount),
			http.StatusUnprocessableEntity)
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	grant, err := h.handler().Lease(ctx, registry.LeaseRequest{
		Region:    req.Region,
		Cell:      hexgrid.Coord{Q: req.Cell[0], R: req.Cell[1]},
		UID:       req.UID,
		Policy:    req.Policy,
		Seed:      req.Seed,
		Draws:     req.Draws,
		Token:     req.Token,
		Forwarded: req.Forwarded,
		Handoff:   req.Handoff,
	})
	if err != nil {
		status, msg := reportErrStatus(err)
		if rem, ok := registry.BudgetRemaining(err); ok {
			w.Header().Set(epsRemainingHeader, strconv.FormatFloat(rem, 'g', -1, 64))
		}
		http.Error(w, msg, status)
		return
	}
	writeJSONPooled(w, r, leaseResponse(grant))
}

// LeaseError is a structured non-200 outcome of Client.Lease, preserving
// the HTTP status and — on 429 budget rejections — the user's live
// epsilon headroom from the X-Corgi-Eps-Remaining header.
type LeaseError struct {
	Status int
	Msg    string
	// EpsRemaining is the user's window headroom; valid when
	// HasEpsRemaining (budget rejections only).
	EpsRemaining    float64
	HasEpsRemaining bool
}

// Error formats the failure with its HTTP status.
func (e *LeaseError) Error() string {
	return fmt.Sprintf("proto: lease refused with status %d: %s", e.Status, e.Msg)
}

// Lease requests (or renews) a client-side draw lease. Non-200 responses
// return a *LeaseError carrying the status and, for budget rejections,
// the eps_remaining headroom.
func (c *Client) Lease(req LeaseRequest) (*LeaseResponse, error) {
	if req.Region == "" {
		req.Region = c.region
	}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/v1/lease", "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	defer drainBody(resp.Body)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		le := &LeaseError{Status: resp.StatusCode, Msg: string(msg)}
		if v := resp.Header.Get(epsRemainingHeader); v != "" {
			if rem, err := strconv.ParseFloat(v, 64); err == nil {
				le.EpsRemaining, le.HasEpsRemaining = rem, true
			}
		}
		return nil, le
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, err
	}
	return &lr, nil
}
