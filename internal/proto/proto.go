// Package proto implements the client/server interaction of Sec. 5
// (Fig. 1/8) as JSON over HTTP. The server (cloud side) owns the location
// tree and solves the expensive optimization; clients send only
// non-sensitive parameters — the privacy level and the *number* of
// locations they intend to prune (|S|), never locations or preference
// contents — and receive the privacy forest of robust matrices to customize
// locally.
//
// Two wire formats coexist. v1 is dense row-major JSON ([][]float64),
// served as plain application/json for compatibility. v2 (see wire.go) is a
// quantized row-sparse binary encoding negotiated via the Accept header
// (ContentTypeForestV2) that cuts forest payloads by >3x before
// compression; responses are additionally gzipped when the client offers
// Accept-Encoding: gzip. Forest responses carry strong ETags (a SHA-256
// over the encoded body, suffixed per content coding — stable across
// restarts because generation is deterministic and the v2 quantization
// idempotent) plus Vary: Accept, Accept-Encoding, and requests with a
// matching If-None-Match get 304 Not Modified with no body, so clients can
// keep their own on-disk forest caches and revalidate for free. Requests
// carry the caller's context through the handler into the generation
// engine, bounded by Handler.Timeout.
//
// Multi-region servers additionally expose the report pipeline (POST
// /v1/report, batch /v1/reports; see report.go): the server evaluates the
// inline policy, prunes, and draws obfuscated reports from per-user
// sessions — a trusted-serving mode that trades Sec. 5's trust model for
// per-report draws instead of matrix shipping.
package proto

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
)

// TreeResponse describes the server's location tree so a client can rebuild
// it locally (trees are deterministic given these parameters).
type TreeResponse struct {
	OriginLat     float64 `json:"origin_lat"`
	OriginLng     float64 `json:"origin_lng"`
	LeafSpacingKm float64 `json:"leaf_spacing_km"`
	Height        int     `json:"height"`
	RootQ         int     `json:"root_q"`
	RootR         int     `json:"root_r"`
	Epsilon       float64 `json:"epsilon"`
}

// MatrixRequest asks for a privacy forest. Only the privacy level and the
// prune allowance delta = |S| cross the trust boundary (Sec. 5.2 step 4).
type MatrixRequest struct {
	PrivacyLevel int `json:"privacy_l"`
	Delta        int `json:"delta"`
}

// ForestEntryWire is one subtree's matrix on the wire.
type ForestEntryWire struct {
	RootQ  int         `json:"root_q"`
	RootR  int         `json:"root_r"`
	Leaves [][2]int    `json:"leaves"` // axial coords in matrix order
	Rows   [][]float64 `json:"rows"`
}

// ForestResponse carries the whole privacy forest.
type ForestResponse struct {
	PrivacyLevel int               `json:"privacy_l"`
	Delta        int               `json:"delta"`
	Entries      []ForestEntryWire `json:"entries"`
}

// PriorsResponse carries the public leaf priors (footnote 5 of the paper).
type PriorsResponse struct {
	Leaves [][2]int  `json:"leaves"`
	Probs  []float64 `json:"probs"`
}

// Handler serves the CORGI server API:
//
//	GET  /healthz     -> "ok" (liveness)
//	GET  /v1/stats    -> StatsResponse (engine cache/solve counters)
//	GET  /v1/tree     -> TreeResponse
//	GET  /v1/priors   -> PriorsResponse
//	POST /v1/matrices -> ForestResponse, or ForestResponseV2 when the
//	                     request Accepts ContentTypeForestV2
type Handler struct {
	server  *core.Server
	tree    *loctree.Tree
	priors  *loctree.Priors
	spacing float64

	// Timeout bounds each /v1/matrices generation; zero means the request
	// context alone governs cancellation. Expiry returns 504.
	Timeout time.Duration
}

// StatsResponse mirrors core.EngineStats for /v1/stats.
type StatsResponse struct {
	Hits               uint64 `json:"cache_hits"`
	Misses             uint64 `json:"cache_misses"`
	Evictions          uint64 `json:"cache_evictions"`
	CacheBytes         int64  `json:"cache_bytes"`
	CacheEntries       int    `json:"cache_entries"`
	CacheCapacityBytes int64  `json:"cache_capacity_bytes"`
	Solves             uint64 `json:"solves"`
	InFlight           int64  `json:"in_flight"`
	Workers            int    `json:"workers"`
	StoreHits          uint64 `json:"store_hits"`
	StoreMisses        uint64 `json:"store_misses"`
	StoreWrites        uint64 `json:"store_writes"`
	StoreHydrated      uint64 `json:"store_hydrated"`
	AliasBuilds        uint64 `json:"alias_builds"`
	AliasHits          uint64 `json:"alias_hits"`
	AliasBytes         int64  `json:"alias_bytes"`
	DegradedBuilds     uint64 `json:"degraded_builds"`
	DegradedHits       uint64 `json:"degraded_hits"`
	DegradedUpgrades   uint64 `json:"degraded_upgrades"`
	WarmAttempts       uint64 `json:"warm_attempts"`
	WarmAccepts        uint64 `json:"warm_accepts"`
}

// NewHandler wires a core server into an http.Handler.
func NewHandler(server *core.Server, priors *loctree.Priors, leafSpacingKm float64) (*Handler, error) {
	if server == nil || priors == nil {
		return nil, fmt.Errorf("proto: nil server or priors")
	}
	return &Handler{
		server:  server,
		tree:    server.Tree(),
		priors:  priors,
		spacing: leafSpacingKm,
	}, nil
}

// Mux returns the routed handler.
func (h *Handler) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.handleHealthz)
	mux.HandleFunc("/v1/stats", h.handleStats)
	mux.HandleFunc("/v1/tree", h.handleTree)
	mux.HandleFunc("/v1/priors", h.handlePriors)
	mux.HandleFunc("/v1/matrices", h.handleMatrices)
	return mux
}

// writeJSONAs encodes v with the given content type, gzipping when the
// client offered Accept-Encoding: gzip (r may be nil to skip negotiation).
// Encoding happens into a buffer first so a marshal failure becomes a clean
// 500 instead of a half-written body under already-flushed headers.
func writeJSONAs(w http.ResponseWriter, r *http.Request, contentType string, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRaw(w, r, contentType, body)
}

// writeRaw sends a pre-marshaled body, gzipping when the client offered
// Accept-Encoding: gzip (r may be nil to skip negotiation).
func writeRaw(w http.ResponseWriter, r *http.Request, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	if r != nil && strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		defer gz.Close()
		gz.Write(body)
		return
	}
	w.Write(body)
}

// forestETag derives the strong ETag for an encoded forest body. Forest
// generation is deterministic and the v2 codec's quantization idempotent,
// so the tag is stable across processes and store round-trips for v2
// responses; it covers the exact representation — v1 and v2 bodies tag
// differently, and (strong ETags name the representation including its
// content coding, RFC 9110 §8.8.3) a gzipped response tags differently
// from the identity one.
func forestETag(body []byte, gzipped bool) string {
	sum := sha256.Sum256(body)
	tag := hex.EncodeToString(sum[:16])
	if gzipped {
		tag += "-gzip"
	}
	return `"` + tag + `"`
}

// etagMatches implements the If-None-Match strong comparison: any listed
// tag equal to etag (weak W/ tags never strongly match), or "*".
func etagMatches(header, etag string) bool {
	for _, tok := range strings.Split(header, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "*" || tok == etag {
			return tok != ""
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	writeJSONAs(w, nil, "application/json", v)
}

// jsonBufPool recycles encode buffers for the report hot paths: at a few
// kilobytes per response, per-request buffers are the dominant handler
// allocation once the pipeline itself stops allocating.
var jsonBufPool = sync.Pool{
	New: func() interface{} { return new(bytes.Buffer) },
}

// writeJSONPooled is writeJSONAs with a pooled encode buffer, for hot
// JSON routes (the report paths). Marshal failures still become a clean
// 500 before any body byte is written.
func writeJSONPooled(w http.ResponseWriter, r *http.Request, v interface{}) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		jsonBufPool.Put(buf)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRaw(w, r, "application/json", buf.Bytes())
	// A rare huge batch response should not pin its buffer in the pool.
	if buf.Cap() <= 1<<20 {
		jsonBufPool.Put(buf)
	}
}

// drainBody consumes what remains of a response body (bounded, so a
// misbehaving server cannot hold the client) before the caller closes it.
// An HTTP/1.1 connection only returns to the keep-alive pool when its
// body has been read to EOF; closing early tears the connection down and
// the next request pays a fresh TCP (and possibly TLS) setup.
func drainBody(body io.Reader) {
	io.Copy(io.Discard, io.LimitReader(body, 64<<10))
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// statsResponse converts engine counters to their wire form.
func statsResponse(s core.EngineStats) StatsResponse {
	return StatsResponse{
		Hits:               s.Hits,
		Misses:             s.Misses,
		Evictions:          s.Evictions,
		CacheBytes:         s.CacheBytes,
		CacheEntries:       s.CacheEntries,
		CacheCapacityBytes: s.CacheCapacity,
		Solves:             s.Solves,
		InFlight:           s.InFlight,
		Workers:            s.Workers,
		StoreHits:          s.StoreHits,
		StoreMisses:        s.StoreMisses,
		StoreWrites:        s.StoreWrites,
		StoreHydrated:      s.StoreHydrated,
		AliasBuilds:        s.AliasBuilds,
		AliasHits:          s.AliasHits,
		AliasBytes:         s.AliasBytes,
		DegradedBuilds:     s.DegradedBuilds,
		DegradedHits:       s.DegradedHits,
		DegradedUpgrades:   s.DegradedUpgrades,
		WarmAttempts:       s.WarmAttempts,
		WarmAccepts:        s.WarmAccepts,
	}
}

// treeResponse describes a tree so a client can rebuild it locally.
func treeResponse(tree *loctree.Tree, spacing, epsilon float64) TreeResponse {
	origin := tree.System().Origin()
	root := tree.Root()
	return TreeResponse{
		OriginLat:     origin.Lat,
		OriginLng:     origin.Lng,
		LeafSpacingKm: spacing,
		Height:        tree.Height(),
		RootQ:         root.Coord.Q,
		RootR:         root.Coord.R,
		Epsilon:       epsilon,
	}
}

// priorsResponse flattens the public leaf priors for the wire.
func priorsResponse(tree *loctree.Tree, priors *loctree.Priors) PriorsResponse {
	leaves := tree.LevelNodes(0)
	resp := PriorsResponse{Leaves: make([][2]int, len(leaves)), Probs: make([]float64, len(leaves))}
	for i, l := range leaves {
		resp.Leaves[i] = [2]int{l.Coord.Q, l.Coord.R}
		resp.Probs[i] = priors.Of(tree, l)
	}
	return resp
}

// generateErrStatus maps a forest-generation error to an HTTP status and
// message, shared by the single-forest and batch paths.
func generateErrStatus(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "generation timed out: " + err.Error()
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "request canceled"
	default:
		return http.StatusUnprocessableEntity, err.Error()
	}
}

// wantsForestV2 reports whether the request negotiated the compact v2
// forest encoding via Accept.
func wantsForestV2(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), ContentTypeForestV2)
}

// writeForestNegotiated serves a generated forest in whichever encoding
// the request's Accept header negotiated (v2 compact or v1 dense), with a
// strong ETag over the encoded body. A request whose If-None-Match lists
// the current tag gets 304 Not Modified with no body — clients keep a
// small forest cache and revalidate for free (generation itself is served
// by the engine's own caches; the 304 saves the payload bytes).
func writeForestNegotiated(w http.ResponseWriter, r *http.Request, tree *loctree.Tree, forest *core.Forest) {
	var (
		v     interface{}
		ctype string
		err   error
	)
	if wantsForestV2(r) {
		ctype = ContentTypeForestV2
		v, err = EncodeForestV2(tree, forest)
	} else {
		ctype = "application/json"
		v, err = EncodeForestV1(tree, forest)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// The response varies by negotiated encoding (Accept) and content
	// coding (Accept-Encoding), and the strong ETag must name that exact
	// representation — without both, a shared cache could satisfy a
	// v1/identity client with v2/gzip bytes.
	gzipped := strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
	etag := forestETag(body, gzipped)
	w.Header().Set("Vary", "Accept, Accept-Encoding")
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeRaw(w, r, ctype, body)
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, statsResponse(h.server.Stats()))
}

func (h *Handler) handleTree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, treeResponse(h.tree, h.spacing, h.server.Params().Epsilon))
}

func (h *Handler) handlePriors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, priorsResponse(h.tree, h.priors))
}

func (h *Handler) handleMatrices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req MatrixRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if h.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.Timeout)
		defer cancel()
	}
	forest, err := h.server.GenerateForestCtx(ctx, req.PrivacyLevel, req.Delta)
	if err != nil {
		status, msg := generateErrStatus(err)
		http.Error(w, msg, status)
		return
	}
	writeForestNegotiated(w, r, h.tree, forest)
}

// EncodeForestV1 converts a generated forest into the dense v1 wire form,
// emitting entries in the tree's level-node order.
func EncodeForestV1(tree *loctree.Tree, forest *core.Forest) (*ForestResponse, error) {
	resp := &ForestResponse{PrivacyLevel: forest.PrivacyLevel, Delta: forest.Delta}
	for _, node := range tree.LevelNodes(forest.PrivacyLevel) {
		e, ok := forest.Entries[node]
		if !ok {
			return nil, fmt.Errorf("proto: forest missing entry for %v", node)
		}
		wire := ForestEntryWire{RootQ: node.Coord.Q, RootR: node.Coord.R}
		for _, l := range e.Leaves {
			wire.Leaves = append(wire.Leaves, [2]int{l.Coord.Q, l.Coord.R})
		}
		for i := 0; i < e.Matrix.Dim(); i++ {
			row := make([]float64, e.Matrix.Dim())
			copy(row, e.Matrix.Row(i))
			wire.Rows = append(wire.Rows, row)
		}
		resp.Entries = append(resp.Entries, wire)
	}
	return resp, nil
}

// Client is the user-side API consumer. The zero Region addresses the
// server's default region; setting Region (or using NewRegionClient)
// routes every call to that named shard of a multi-region server.
//
// Forest requests advertise the compact v2 encoding and (via the
// transport's default negotiation) gzip; ForceV1 is the escape hatch back
// to dense v1 JSON for debugging or very old servers.
type Client struct {
	base   string
	region string
	http   *http.Client

	// ForceV1 stops advertising the compact v2 forest encoding, so
	// responses come back as dense v1 JSON.
	ForceV1 bool
}

// NewClient targets a server base URL (e.g. "http://127.0.0.1:8080"). The
// client gets its own transport with an idle-connection pool sized for
// concurrent callers: the shared DefaultTransport keeps only 2 idle
// connections per host, which under a concurrent workload (the loadgen,
// batch fan-outs) tears down and re-dials keep-alive connections
// constantly.
func NewClient(base string) *Client {
	tr := &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{base: base, http: &http.Client{Transport: tr, Timeout: 10 * time.Minute}}
}

// NewRegionClient targets one named region of a multi-region server.
// Unknown regions fail with the server's 404, whose message lists the
// available region names.
func NewRegionClient(base, region string) *Client {
	c := NewClient(base)
	c.region = region
	return c
}

// path appends the client's region parameter to an API path.
func (c *Client) path(p string) string {
	if c.region == "" {
		return p
	}
	return p + "?region=" + url.QueryEscape(c.region)
}

// FetchRegions lists the server's regions. Pre-sharding servers have no
// /v1/regions route; callers get their 404 as an error.
func (c *Client) FetchRegions() (*RegionsResponse, error) {
	var rr RegionsResponse
	if err := c.getJSON("/v1/regions", &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

// FetchTree retrieves the tree parameters and rebuilds the location tree.
func (c *Client) FetchTree() (*loctree.Tree, *TreeResponse, error) {
	var tr TreeResponse
	if err := c.getJSON(c.path("/v1/tree"), &tr); err != nil {
		return nil, nil, err
	}
	sys, err := hexgrid.NewSystem(geo.LatLng{Lat: tr.OriginLat, Lng: tr.OriginLng}, tr.LeafSpacingKm)
	if err != nil {
		return nil, nil, err
	}
	tree, err := loctree.New(sys, hexgrid.Coord{Q: tr.RootQ, R: tr.RootR}, tr.Height)
	if err != nil {
		return nil, nil, err
	}
	return tree, &tr, nil
}

// FetchPriors retrieves the public leaf priors for a rebuilt tree.
func (c *Client) FetchPriors(tree *loctree.Tree) (*loctree.Priors, error) {
	var pr PriorsResponse
	if err := c.getJSON(c.path("/v1/priors"), &pr); err != nil {
		return nil, err
	}
	if len(pr.Leaves) != tree.NumLeaves() {
		return nil, fmt.Errorf("proto: server sent %d priors, tree has %d leaves", len(pr.Leaves), tree.NumLeaves())
	}
	leaf := make([]float64, tree.NumLeaves())
	for i, qr := range pr.Leaves {
		n := loctree.NodeID{Level: 0, Coord: hexgrid.Coord{Q: qr[0], R: qr[1]}}
		idx, ok := tree.IndexOf(n)
		if !ok {
			return nil, fmt.Errorf("proto: prior for foreign leaf %v", n)
		}
		leaf[idx] = pr.Probs[i]
	}
	return loctree.NewPriors(tree, leaf)
}

// accept is the Accept header this client advertises for forest routes.
func (c *Client) accept() string {
	if c.ForceV1 {
		return "application/json"
	}
	return ContentTypeForestV2 + ", application/json"
}

// ForestResult is one forest fetch outcome, carrying enough for a caller
// to maintain its own conditional-fetch cache: the decoded forest, the
// response's strong ETag, and the raw body + content type to store and
// re-decode after a later 304.
type ForestResult struct {
	// Forest is the decoded forest; nil when NotModified.
	Forest *core.Forest
	// ETag is the response's entity tag ("" if the server sent none).
	ETag string
	// NotModified reports a 304: the caller's cached copy (whose tag was
	// sent as ifNoneMatch) is still current.
	NotModified bool
	// ContentType and Body are the raw representation, for caching. Empty
	// when NotModified.
	ContentType string
	Body        []byte
}

// FetchForest requests the privacy forest for (privacyLevel, delta) and
// reassembles it against the local tree. The request advertises the compact
// v2 encoding (unless ForceV1); the response Content-Type decides which
// decoder runs, so a v1-only server keeps working unchanged.
func (c *Client) FetchForest(tree *loctree.Tree, privacyLevel, delta int) (*core.Forest, error) {
	res, err := c.FetchForestTagged(tree, privacyLevel, delta, "")
	if err != nil {
		return nil, err
	}
	return res.Forest, nil
}

// FetchForestTagged is FetchForest with conditional-fetch support: a
// non-empty ifNoneMatch is sent as If-None-Match, and a 304 comes back as
// NotModified=true with no body re-downloaded or decoded. Decode a cached
// body with DecodeForestBody.
func (c *Client) FetchForestTagged(tree *loctree.Tree, privacyLevel, delta int, ifNoneMatch string) (*ForestResult, error) {
	body, err := json.Marshal(MatrixRequest{PrivacyLevel: privacyLevel, Delta: delta})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+c.path("/v1/matrices"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", c.accept())
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	defer drainBody(resp.Body)
	if resp.StatusCode == http.StatusNotModified {
		etag := resp.Header.Get("ETag")
		if etag == "" {
			etag = ifNoneMatch
		}
		return &ForestResult{ETag: etag, NotModified: true}, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("proto: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	ctype := resp.Header.Get("Content-Type")
	forest, err := DecodeForestBody(tree, ctype, raw)
	if err != nil {
		return nil, err
	}
	return &ForestResult{
		Forest:      forest,
		ETag:        resp.Header.Get("ETag"),
		ContentType: ctype,
		Body:        raw,
	}, nil
}

// DecodeForestBody reassembles a raw forest response body against the
// local tree, dispatching on the response's Content-Type (v2 compact or v1
// dense). It is the decoding half of FetchForestTagged, exported so
// callers can re-decode bodies they cached across a 304.
func DecodeForestBody(tree *loctree.Tree, contentType string, body []byte) (*core.Forest, error) {
	if strings.Contains(contentType, ContentTypeForestV2) {
		var fr ForestResponseV2
		if err := json.Unmarshal(body, &fr); err != nil {
			return nil, err
		}
		return DecodeForestV2(tree, &fr)
	}
	var fr ForestResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		return nil, err
	}
	return DecodeForest(tree, &fr)
}

// FetchForestBatch resolves many (region, privacy level, delta) requests
// in one POST /v1/forests round trip, advertising the compact v2 encoding
// for the embedded forests. Per-item outcomes come back in request order;
// failed items carry their own status and error instead of failing the
// batch. Decode successful items with BatchItemResult.Decode.
func (c *Client) FetchForestBatch(items []BatchItem) (*BatchForestResponse, error) {
	body, err := json.Marshal(BatchForestRequest{Items: items})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/forests", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", c.accept())
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	defer drainBody(resp.Body)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("proto: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var br BatchForestResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	return &br, nil
}

// Decode reassembles a successful batch item's forest against its
// region's local tree, whichever encoding the batch negotiated.
func (r *BatchItemResult) Decode(tree *loctree.Tree) (*core.Forest, error) {
	if r.Status != http.StatusOK {
		return nil, fmt.Errorf("proto: batch item (%s, %d, %d) failed with %d: %s",
			r.Region, r.PrivacyLevel, r.Delta, r.Status, r.Error)
	}
	switch {
	case r.ForestV2 != nil:
		return DecodeForestV2(tree, r.ForestV2)
	case r.Forest != nil:
		return DecodeForest(tree, r.Forest)
	default:
		return nil, fmt.Errorf("proto: batch item (%s, %d, %d) has no forest payload",
			r.Region, r.PrivacyLevel, r.Delta)
	}
}

// DecodeForest reassembles a dense v1 response against the local tree.
func DecodeForest(tree *loctree.Tree, fr *ForestResponse) (*core.Forest, error) {
	forest := &core.Forest{
		PrivacyLevel: fr.PrivacyLevel,
		Delta:        fr.Delta,
		Entries:      map[loctree.NodeID]*core.ForestEntry{},
	}
	for _, wire := range fr.Entries {
		root := loctree.NodeID{Level: fr.PrivacyLevel, Coord: hexgrid.Coord{Q: wire.RootQ, R: wire.RootR}}
		if !tree.Contains(root) {
			return nil, fmt.Errorf("proto: entry root %v not in tree", root)
		}
		if len(wire.Rows) != len(wire.Leaves) {
			return nil, fmt.Errorf("proto: entry %v has %d rows for %d leaves", root, len(wire.Rows), len(wire.Leaves))
		}
		m, err := matrixFromRows(wire.Rows)
		if err != nil {
			return nil, fmt.Errorf("proto: entry %v: %w", root, err)
		}
		leaves := make([]loctree.NodeID, len(wire.Leaves))
		for i, qr := range wire.Leaves {
			leaves[i] = loctree.NodeID{Level: 0, Coord: hexgrid.Coord{Q: qr[0], R: qr[1]}}
			if !tree.Contains(leaves[i]) {
				return nil, fmt.Errorf("proto: entry %v leaf %v not in tree", root, leaves[i])
			}
		}
		forest.Entries[root] = &core.ForestEntry{Root: root, Leaves: leaves, Matrix: m}
	}
	return forest, nil
}

func (c *Client) getJSON(path string, v interface{}) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	defer drainBody(resp.Body)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("proto: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// matrixFromRows validates and builds a wire matrix.
func matrixFromRows(rows [][]float64) (*obf.Matrix, error) {
	m, err := obf.FromRows(rows)
	if err != nil {
		return nil, err
	}
	if err := m.CheckStochastic(1e-6); err != nil {
		return nil, err
	}
	return m, nil
}
