// Package proto implements the client/server interaction of Sec. 5
// (Fig. 1/8) as JSON over HTTP. The server (cloud side) owns the location
// tree and solves the expensive optimization; clients send only
// non-sensitive parameters — the privacy level and the *number* of
// locations they intend to prune (|S|), never locations or preference
// contents — and receive the privacy forest of robust matrices to customize
// locally.
package proto

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
)

// TreeResponse describes the server's location tree so a client can rebuild
// it locally (trees are deterministic given these parameters).
type TreeResponse struct {
	OriginLat     float64 `json:"origin_lat"`
	OriginLng     float64 `json:"origin_lng"`
	LeafSpacingKm float64 `json:"leaf_spacing_km"`
	Height        int     `json:"height"`
	RootQ         int     `json:"root_q"`
	RootR         int     `json:"root_r"`
	Epsilon       float64 `json:"epsilon"`
}

// MatrixRequest asks for a privacy forest. Only the privacy level and the
// prune allowance delta = |S| cross the trust boundary (Sec. 5.2 step 4).
type MatrixRequest struct {
	PrivacyLevel int `json:"privacy_l"`
	Delta        int `json:"delta"`
}

// ForestEntryWire is one subtree's matrix on the wire.
type ForestEntryWire struct {
	RootQ  int         `json:"root_q"`
	RootR  int         `json:"root_r"`
	Leaves [][2]int    `json:"leaves"` // axial coords in matrix order
	Rows   [][]float64 `json:"rows"`
}

// ForestResponse carries the whole privacy forest.
type ForestResponse struct {
	PrivacyLevel int               `json:"privacy_l"`
	Delta        int               `json:"delta"`
	Entries      []ForestEntryWire `json:"entries"`
}

// PriorsResponse carries the public leaf priors (footnote 5 of the paper).
type PriorsResponse struct {
	Leaves [][2]int  `json:"leaves"`
	Probs  []float64 `json:"probs"`
}

// Handler serves the CORGI server API:
//
//	GET  /v1/tree     -> TreeResponse
//	GET  /v1/priors   -> PriorsResponse
//	POST /v1/matrices -> ForestResponse (body: MatrixRequest)
type Handler struct {
	server  *core.Server
	tree    *loctree.Tree
	priors  *loctree.Priors
	spacing float64
}

// NewHandler wires a core server into an http.Handler.
func NewHandler(server *core.Server, priors *loctree.Priors, leafSpacingKm float64) (*Handler, error) {
	if server == nil || priors == nil {
		return nil, fmt.Errorf("proto: nil server or priors")
	}
	return &Handler{
		server:  server,
		tree:    server.Tree(),
		priors:  priors,
		spacing: leafSpacingKm,
	}, nil
}

// Mux returns the routed handler.
func (h *Handler) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tree", h.handleTree)
	mux.HandleFunc("/v1/priors", h.handlePriors)
	mux.HandleFunc("/v1/matrices", h.handleMatrices)
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *Handler) handleTree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	origin := h.tree.System().Origin()
	root := h.tree.Root()
	writeJSON(w, TreeResponse{
		OriginLat:     origin.Lat,
		OriginLng:     origin.Lng,
		LeafSpacingKm: h.spacing,
		Height:        h.tree.Height(),
		RootQ:         root.Coord.Q,
		RootR:         root.Coord.R,
		Epsilon:       h.server.Params().Epsilon,
	})
}

func (h *Handler) handlePriors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	leaves := h.tree.LevelNodes(0)
	resp := PriorsResponse{Leaves: make([][2]int, len(leaves)), Probs: make([]float64, len(leaves))}
	for i, l := range leaves {
		resp.Leaves[i] = [2]int{l.Coord.Q, l.Coord.R}
		resp.Probs[i] = h.priors.Of(h.tree, l)
	}
	writeJSON(w, resp)
}

func (h *Handler) handleMatrices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req MatrixRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	forest, err := h.server.GenerateForest(req.PrivacyLevel, req.Delta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := ForestResponse{PrivacyLevel: forest.PrivacyLevel, Delta: forest.Delta}
	for _, node := range h.tree.LevelNodes(forest.PrivacyLevel) {
		e := forest.Entries[node]
		wire := ForestEntryWire{RootQ: node.Coord.Q, RootR: node.Coord.R}
		for _, l := range e.Leaves {
			wire.Leaves = append(wire.Leaves, [2]int{l.Coord.Q, l.Coord.R})
		}
		for i := 0; i < e.Matrix.Dim(); i++ {
			row := make([]float64, e.Matrix.Dim())
			copy(row, e.Matrix.Row(i))
			wire.Rows = append(wire.Rows, row)
		}
		resp.Entries = append(resp.Entries, wire)
	}
	writeJSON(w, resp)
}

// Client is the user-side API consumer.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a server base URL (e.g. "http://127.0.0.1:8080").
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{Timeout: 10 * time.Minute}}
}

// FetchTree retrieves the tree parameters and rebuilds the location tree.
func (c *Client) FetchTree() (*loctree.Tree, *TreeResponse, error) {
	var tr TreeResponse
	if err := c.getJSON("/v1/tree", &tr); err != nil {
		return nil, nil, err
	}
	sys, err := hexgrid.NewSystem(geo.LatLng{Lat: tr.OriginLat, Lng: tr.OriginLng}, tr.LeafSpacingKm)
	if err != nil {
		return nil, nil, err
	}
	tree, err := loctree.New(sys, hexgrid.Coord{Q: tr.RootQ, R: tr.RootR}, tr.Height)
	if err != nil {
		return nil, nil, err
	}
	return tree, &tr, nil
}

// FetchPriors retrieves the public leaf priors for a rebuilt tree.
func (c *Client) FetchPriors(tree *loctree.Tree) (*loctree.Priors, error) {
	var pr PriorsResponse
	if err := c.getJSON("/v1/priors", &pr); err != nil {
		return nil, err
	}
	if len(pr.Leaves) != tree.NumLeaves() {
		return nil, fmt.Errorf("proto: server sent %d priors, tree has %d leaves", len(pr.Leaves), tree.NumLeaves())
	}
	leaf := make([]float64, tree.NumLeaves())
	for i, qr := range pr.Leaves {
		n := loctree.NodeID{Level: 0, Coord: hexgrid.Coord{Q: qr[0], R: qr[1]}}
		idx, ok := tree.IndexOf(n)
		if !ok {
			return nil, fmt.Errorf("proto: prior for foreign leaf %v", n)
		}
		leaf[idx] = pr.Probs[i]
	}
	return loctree.NewPriors(tree, leaf)
}

// FetchForest requests the privacy forest for (privacyLevel, delta) and
// reassembles it against the local tree.
func (c *Client) FetchForest(tree *loctree.Tree, privacyLevel, delta int) (*core.Forest, error) {
	body, err := json.Marshal(MatrixRequest{PrivacyLevel: privacyLevel, Delta: delta})
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/v1/matrices", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("proto: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var fr ForestResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return nil, err
	}
	return decodeForest(tree, &fr)
}

func decodeForest(tree *loctree.Tree, fr *ForestResponse) (*core.Forest, error) {
	forest := &core.Forest{
		PrivacyLevel: fr.PrivacyLevel,
		Delta:        fr.Delta,
		Entries:      map[loctree.NodeID]*core.ForestEntry{},
	}
	for _, wire := range fr.Entries {
		root := loctree.NodeID{Level: fr.PrivacyLevel, Coord: hexgrid.Coord{Q: wire.RootQ, R: wire.RootR}}
		if !tree.Contains(root) {
			return nil, fmt.Errorf("proto: entry root %v not in tree", root)
		}
		if len(wire.Rows) != len(wire.Leaves) {
			return nil, fmt.Errorf("proto: entry %v has %d rows for %d leaves", root, len(wire.Rows), len(wire.Leaves))
		}
		m, err := matrixFromRows(wire.Rows)
		if err != nil {
			return nil, fmt.Errorf("proto: entry %v: %w", root, err)
		}
		leaves := make([]loctree.NodeID, len(wire.Leaves))
		for i, qr := range wire.Leaves {
			leaves[i] = loctree.NodeID{Level: 0, Coord: hexgrid.Coord{Q: qr[0], R: qr[1]}}
			if !tree.Contains(leaves[i]) {
				return nil, fmt.Errorf("proto: entry %v leaf %v not in tree", root, leaves[i])
			}
		}
		forest.Entries[root] = &core.ForestEntry{Root: root, Leaves: leaves, Matrix: m}
	}
	return forest, nil
}

func (c *Client) getJSON(path string, v interface{}) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("proto: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// matrixFromRows validates and builds a wire matrix.
func matrixFromRows(rows [][]float64) (*obf.Matrix, error) {
	m, err := obf.FromRows(rows)
	if err != nil {
		return nil, err
	}
	if err := m.CheckStochastic(1e-6); err != nil {
		return nil, err
	}
	return m, nil
}
