package proto

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"corgi/internal/budget"
	"corgi/internal/cluster"
	"corgi/internal/core"
	"corgi/internal/registry"
	"corgi/internal/session"
	"corgi/internal/store"
	"corgi/internal/stream"
)

// DefaultMaxBatch bounds the item count of one POST /v1/forests request,
// aliasing the registry-level constant shared with the stream transport.
const DefaultMaxBatch = registry.DefaultMaxBatch

// RegionInfo describes one configured region for /v1/regions. Everything
// here comes from the spec, so listing regions never forces a bootstrap;
// Ready reports whether the shard has bootstrapped yet.
type RegionInfo struct {
	Name          string  `json:"name"`
	CenterLat     float64 `json:"center_lat"`
	CenterLng     float64 `json:"center_lng"`
	LeafSpacingKm float64 `json:"leaf_spacing_km"`
	Height        int     `json:"height"`
	Epsilon       float64 `json:"epsilon"`
	Ready         bool    `json:"ready"`
}

// RegionsResponse lists the serving regions and which one requests
// without a ?region= parameter resolve to.
type RegionsResponse struct {
	Default string       `json:"default"`
	Regions []RegionInfo `json:"regions"`
}

// BatchItem is one (region, privacy level, delta) forest request inside a
// batch.
type BatchItem struct {
	Region       string `json:"region"`
	PrivacyLevel int    `json:"privacy_l"`
	Delta        int    `json:"delta"`
}

// BatchForestRequest asks for many forests in one round trip.
type BatchForestRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchItemResult carries one item's outcome. Items fail independently:
// Status is the per-item HTTP-equivalent code, and exactly one of Forest
// (v1) or ForestV2 is set on success, matching the batch's negotiated
// encoding.
type BatchItemResult struct {
	Region       string            `json:"region"`
	PrivacyLevel int               `json:"privacy_l"`
	Delta        int               `json:"delta"`
	Status       int               `json:"status"`
	Error        string            `json:"error,omitempty"`
	Forest       *ForestResponse   `json:"forest,omitempty"`
	ForestV2     *ForestResponseV2 `json:"forest_v2,omitempty"`
}

// BatchForestResponse is the batch envelope. The HTTP status is 200 as
// long as the batch itself was well-formed; per-item failures live in
// Items[i].Status / Items[i].Error.
type BatchForestResponse struct {
	Items []BatchItemResult `json:"items"`
}

// MultiStatsResponse reports per-region engine counters plus the
// fleet-wide aggregate, and the same split for report-session and
// epsilon-budget counters. Only bootstrapped regions appear under the
// per-region maps; the budget maps are empty when accounting is disabled,
// and Stream only appears when a corgi-stream listener is attached.
type MultiStatsResponse struct {
	Regions       map[string]StatsResponse `json:"regions"`
	Total         StatsResponse            `json:"total"`
	Bootstraps    uint64                   `json:"bootstraps"`
	Sessions      map[string]session.Stats `json:"sessions,omitempty"`
	SessionsTotal session.Stats            `json:"sessions_total"`
	Budget        map[string]budget.Stats  `json:"budget,omitempty"`
	BudgetTotal   *budget.Stats            `json:"budget_total,omitempty"`
	Stream        *stream.Stats            `json:"stream,omitempty"`
	// Cluster reports the consistent-hash router's counters (owner-served
	// vs forwarded traffic, failovers, budget handoffs, peer store
	// fetches); only present when the node runs in cluster mode.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// Lease reports the draw-lease counters (issued/renewed/denied and
	// pre-paid draws), registry-wide.
	Lease registry.LeaseStats `json:"lease"`
}

// MultiHandler serves the region-addressed CORGI API over a registry of
// engine shards:
//
//	GET  /healthz                   -> "ok" (liveness)
//	GET  /v1/regions                -> RegionsResponse
//	GET  /v1/stats                  -> MultiStatsResponse
//	GET  /v1/tree?region=R          -> TreeResponse
//	GET  /v1/priors?region=R        -> PriorsResponse
//	GET|POST /v1/forest?region=R    -> ForestResponse (v1/v2 negotiated)
//	POST /v1/matrices?region=R      -> same (v1-era path, kept for old clients)
//	POST /v1/forests                -> BatchForestResponse
//	POST /v1/report                 -> ReportResponse (server-side draws)
//	POST /v1/reports                -> BatchReportResponse
//	POST /v1/lease                  -> LeaseResponse (client-side draw lease)
//
// Omitting ?region= addresses the registry's default region, so a
// pre-sharding client keeps working against a multi-region server.
// Unknown regions return 404 with a body listing the available names.
type MultiHandler struct {
	reg *registry.Registry

	// Timeout bounds each request's generation work (the whole batch for
	// /v1/forests); zero leaves the request context alone in charge.
	Timeout time.Duration
	// MaxBatch caps the items of one batch request (/v1/forests and
	// /v1/reports alike). <= 0 uses DefaultMaxBatch.
	MaxBatch int
	// MaxReportCount caps the draws of one report request. <= 0 uses
	// DefaultMaxReportCount.
	MaxReportCount int
	// Stream, when set, merges the binary stream transport's counters
	// into GET /v1/stats so both transports report through one endpoint.
	Stream *stream.Server
	// Handler, when set, replaces the registry as the report/lease
	// pipeline entry — cluster mode points it at the router so HTTP
	// requests for non-owned users forward to their owner node. Nil serves
	// every request locally.
	Handler registry.ReportHandler
	// Cluster, when set, adds the router's counter section to
	// GET /v1/stats.
	Cluster *cluster.Router
	// Store, when set, exposes GET /v1/store/snapshot — raw snapshot
	// bytes (checksummed CRGF files) for peer hydration. The fetching
	// node re-validates the checksum, so a stale or corrupt byte stream
	// degrades to a local solve, never a bad forest.
	Store *store.Store
}

// NewMultiHandler wires a region registry into an http.Handler.
func NewMultiHandler(reg *registry.Registry) (*MultiHandler, error) {
	if reg == nil {
		return nil, fmt.Errorf("proto: nil registry")
	}
	return &MultiHandler{reg: reg}, nil
}

// handler returns the report/lease pipeline entry: the cluster router
// when one is attached, the local registry otherwise.
func (h *MultiHandler) handler() registry.ReportHandler {
	if h.Handler != nil {
		return h.Handler
	}
	return h.reg
}

// Mux returns the routed handler.
func (h *MultiHandler) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.handleHealthz)
	mux.HandleFunc("/v1/regions", h.handleRegions)
	mux.HandleFunc("/v1/stats", h.handleStats)
	mux.HandleFunc("/v1/tree", h.handleTree)
	mux.HandleFunc("/v1/priors", h.handlePriors)
	mux.HandleFunc("/v1/forest", h.handleForest)
	// The v1-era route keeps its POST-only contract; GET probing belongs
	// to /v1/forest.
	mux.HandleFunc("/v1/matrices", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		h.handleForest(w, r)
	})
	mux.HandleFunc("/v1/forests", h.handleBatch)
	mux.HandleFunc("/v1/report", h.handleReport)
	mux.HandleFunc("/v1/reports", h.handleReports)
	mux.HandleFunc("/v1/lease", h.handleLease)
	mux.HandleFunc("/v1/store/snapshot", h.handleStoreSnapshot)
	return mux
}

// handleStoreSnapshot serves GET /v1/store/snapshot?spec=H&level=L&delta=D:
// the raw CRGF snapshot file for one forest key, so cluster peers can
// hydrate from a node that already solved instead of re-running the LP.
// The payload is the on-disk checksummed format; the peer validates it
// with the same decode pipeline as a local read.
func (h *MultiHandler) handleStoreSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if h.Store == nil {
		http.Error(w, "snapshot store not enabled", http.StatusNotFound)
		return
	}
	level, err := queryInt(r, "level", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	delta, err := queryInt(r, "delta", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k := store.Key{SpecHash: r.URL.Query().Get("spec"), Level: level, Delta: delta}
	raw, err := h.Store.LoadRaw(k)
	if err != nil {
		if store.IsNotFound(err) {
			http.Error(w, "snapshot not found", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(raw)
}

func (h *MultiHandler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// shard resolves the request's ?region= to a bootstrapped shard, writing
// the error response (404 listing available regions for unknown names)
// itself when resolution fails.
func (h *MultiHandler) shard(ctx context.Context, w http.ResponseWriter, r *http.Request) (*registry.Shard, bool) {
	sh, err := h.reg.Shard(ctx, r.URL.Query().Get("region"))
	if err != nil {
		switch {
		case errors.Is(err, registry.ErrUnknownRegion):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			http.Error(w, "region bootstrap interrupted: "+err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, "region bootstrap failed: "+err.Error(), http.StatusInternalServerError)
		}
		return nil, false
	}
	return sh, true
}

// requestCtx applies the handler timeout to the request context.
func (h *MultiHandler) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if h.Timeout > 0 {
		return context.WithTimeout(r.Context(), h.Timeout)
	}
	return context.WithCancel(r.Context())
}

func (h *MultiHandler) handleRegions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	resp := RegionsResponse{Default: h.reg.DefaultRegion()}
	for _, name := range h.reg.Names() {
		spec, _ := h.reg.Spec(name)
		resp.Regions = append(resp.Regions, RegionInfo{
			Name:          spec.Name,
			CenterLat:     spec.CenterLat,
			CenterLng:     spec.CenterLng,
			LeafSpacingKm: spec.LeafSpacingKm,
			Height:        spec.Height,
			Epsilon:       spec.Epsilon,
			Ready:         h.reg.Ready(name),
		})
	}
	writeJSONAs(w, r, "application/json", resp)
}

func (h *MultiHandler) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	// One snapshot feeds both views so Total always equals the sum of
	// Regions, even under live traffic.
	stats := h.reg.Stats()
	var total core.EngineStats
	resp := MultiStatsResponse{
		Regions:    make(map[string]StatsResponse, len(stats)),
		Bootstraps: h.reg.Bootstraps(),
		Sessions:   h.reg.SessionStats(),
	}
	for name, s := range stats {
		resp.Regions[name] = statsResponse(s)
		total.Merge(s)
	}
	resp.Total = statsResponse(total)
	for _, s := range resp.Sessions {
		resp.SessionsTotal.Merge(s)
	}
	if bs := h.reg.BudgetStats(); len(bs) > 0 {
		resp.Budget = bs
		var total budget.Stats
		for _, s := range bs {
			total.Merge(s)
		}
		resp.BudgetTotal = &total
	}
	if h.Stream != nil {
		ss := h.Stream.Stats()
		resp.Stream = &ss
	}
	if h.Cluster != nil {
		cs := h.Cluster.Stats()
		resp.Cluster = &cs
	}
	resp.Lease = h.reg.LeaseStats()
	writeJSON(w, resp)
}

func (h *MultiHandler) handleTree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	sh, ok := h.shard(ctx, w, r)
	if !ok {
		return
	}
	writeJSON(w, treeResponse(sh.Server.Tree(), sh.Spec.LeafSpacingKm, sh.Spec.Epsilon))
}

func (h *MultiHandler) handlePriors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	sh, ok := h.shard(ctx, w, r)
	if !ok {
		return
	}
	writeJSON(w, priorsResponse(sh.Server.Tree(), sh.Server.Priors()))
}

// handleForest serves one region's forest. POST carries a MatrixRequest
// body (the v1-era protocol); GET reads privacy_l and delta from the
// query string for curl-friendly probing.
func (h *MultiHandler) handleForest(w http.ResponseWriter, r *http.Request) {
	var req MatrixRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
	case http.MethodGet:
		var err error
		if req.PrivacyLevel, err = queryInt(r, "privacy_l", 1); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Delta, err = queryInt(r, "delta", 0); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	sh, ok := h.shard(ctx, w, r)
	if !ok {
		return
	}
	forest, err := sh.Server.GenerateForestCtx(ctx, req.PrivacyLevel, req.Delta)
	if err != nil {
		status, msg := generateErrStatus(err)
		http.Error(w, msg, status)
		return
	}
	writeForestNegotiated(w, r, sh.Server.Tree(), forest)
}

// handleBatch resolves many (region, level, delta) requests in one round
// trip. Items fan out concurrently — each shard's engine still bounds its
// own LP concurrency and deduplicates identical in-flight keys — and fail
// independently: one bad region or level never poisons its neighbors.
func (h *MultiHandler) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req BatchForestRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	maxBatch := h.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if len(req.Items) == 0 {
		http.Error(w, "batch has no items", http.StatusBadRequest)
		return
	}
	if len(req.Items) > maxBatch {
		http.Error(w, fmt.Sprintf("batch of %d items exceeds limit %d", len(req.Items), maxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	wantV2 := wantsForestV2(r)

	resp := BatchForestResponse{Items: make([]BatchItemResult, len(req.Items))}
	var wg sync.WaitGroup
	for i, item := range req.Items {
		wg.Add(1)
		go func(i int, item BatchItem) {
			defer wg.Done()
			resp.Items[i] = h.resolveItem(ctx, item, wantV2)
		}(i, item)
	}
	wg.Wait()
	writeJSONAs(w, r, "application/json", resp)
}

// resolveItem generates and encodes one batch item's forest.
func (h *MultiHandler) resolveItem(ctx context.Context, item BatchItem, wantV2 bool) BatchItemResult {
	res := BatchItemResult{Region: item.Region, PrivacyLevel: item.PrivacyLevel, Delta: item.Delta}
	fail := func(status int, msg string) BatchItemResult {
		res.Status = status
		res.Error = msg
		return res
	}
	sh, err := h.reg.Shard(ctx, item.Region)
	if err != nil {
		// Mirror the single-request shard() mapping: unknown region is the
		// caller's fault, an interrupted wait is 503, and any other
		// bootstrap failure is a server fault, not a 422.
		switch {
		case errors.Is(err, registry.ErrUnknownRegion):
			return fail(http.StatusNotFound, err.Error())
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			return fail(http.StatusServiceUnavailable, "region bootstrap interrupted: "+err.Error())
		default:
			return fail(http.StatusInternalServerError, "region bootstrap failed: "+err.Error())
		}
	}
	if res.Region == "" {
		res.Region = sh.Spec.Name
	}
	forest, err := sh.Server.GenerateForestCtx(ctx, item.PrivacyLevel, item.Delta)
	if err != nil {
		status, msg := generateErrStatus(err)
		return fail(status, msg)
	}
	if wantV2 {
		enc, err := EncodeForestV2(sh.Server.Tree(), forest)
		if err != nil {
			return fail(http.StatusInternalServerError, err.Error())
		}
		res.ForestV2 = enc
	} else {
		enc, err := EncodeForestV1(sh.Server.Tree(), forest)
		if err != nil {
			return fail(http.StatusInternalServerError, err.Error())
		}
		res.Forest = enc
	}
	res.Status = http.StatusOK
	return res
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, s)
	}
	return v, nil
}
