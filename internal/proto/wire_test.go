package proto

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
)

func generateTestForest(t *testing.T) (*loctree.Tree, *core.Forest) {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		t.Fatal(err)
	}
	priors := loctree.UniformPriors(tree)
	leaves := tree.LevelNodes(0)
	targets := []geo.LatLng{tree.Center(leaves[0]), tree.Center(leaves[24])}
	srv, err := core.NewServer(tree, priors, targets, []float64{1, 1}, core.Params{
		Epsilon: 15, Iterations: 1, UseGraphApprox: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Privacy level 2 yields the 49x49 root matrix — the matrix-dominated
	// payload the compact encoding targets (the paper's height-3 setup is
	// 343x343, where the gain is larger still).
	forest, err := srv.GenerateForest(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tree, forest
}

// TestWireV2RoundTripAndSize encodes a real forest both ways and checks the
// v2 payload decodes back to the dense matrices within 1e-9 while being at
// least 3x smaller on the wire.
func TestWireV2RoundTripAndSize(t *testing.T) {
	tree, forest := generateTestForest(t)

	v1, err := EncodeForestV1(tree, forest)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := EncodeForestV2(tree, forest)
	if err != nil {
		t.Fatal(err)
	}
	v1Bytes, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	v2Bytes, err := json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1Bytes) < 3*len(v2Bytes) {
		t.Fatalf("v2 payload %d bytes vs v1 %d bytes: reduction %.2fx < 3x",
			len(v2Bytes), len(v1Bytes), float64(len(v1Bytes))/float64(len(v2Bytes)))
	}
	t.Logf("v1 %d bytes, v2 %d bytes (%.1fx smaller)",
		len(v1Bytes), len(v2Bytes), float64(len(v1Bytes))/float64(len(v2Bytes)))

	var decoded ForestResponseV2
	if err := json.Unmarshal(v2Bytes, &decoded); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeForestV2(tree, &decoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(forest.Entries) {
		t.Fatalf("decoded %d entries, want %d", len(got.Entries), len(forest.Entries))
	}
	for node, want := range forest.Entries {
		g, ok := got.Entries[node]
		if !ok {
			t.Fatalf("decoded forest missing %v", node)
		}
		for i := 0; i < want.Matrix.Dim(); i++ {
			for j := 0; j < want.Matrix.Dim(); j++ {
				if d := math.Abs(g.Matrix.At(i, j) - want.Matrix.At(i, j)); d > 1e-9 {
					t.Fatalf("entry %v (%d,%d): decode error %g > 1e-9", node, i, j, d)
				}
			}
		}
	}
}

// TestWireV2DecodeErrors exercises the malformed-blob paths.
func TestWireV2DecodeErrors(t *testing.T) {
	tree, forest := generateTestForest(t)
	good, err := EncodeForestV2(tree, forest)
	if err != nil {
		t.Fatal(err)
	}
	clone := func() *ForestResponseV2 {
		b, _ := json.Marshal(good)
		var c ForestResponseV2
		_ = json.Unmarshal(b, &c)
		return &c
	}

	c := clone()
	c.Entries[0].RootQ = 999
	if _, err := DecodeForestV2(tree, c); err == nil {
		t.Error("foreign root must fail")
	}
	c = clone()
	c.Entries[0].Dim++
	if _, err := DecodeForestV2(tree, c); err == nil {
		t.Error("dim/leaves mismatch must fail")
	}
	c = clone()
	c.Entries[0].Data = c.Entries[0].Data[:len(c.Entries[0].Data)-1]
	if _, err := DecodeForestV2(tree, c); err == nil {
		t.Error("truncated blob must fail")
	}
	c = clone()
	c.Entries[0].Data = append(c.Entries[0].Data, 0)
	if _, err := DecodeForestV2(tree, c); err == nil {
		t.Error("trailing bytes must fail")
	}
	c = clone()
	// Zero the first row's payload: the row no longer sums to 1.
	for i := 2; i < 8 && i < len(c.Entries[0].Data); i++ {
		c.Entries[0].Data[i] = 0
	}
	if _, err := DecodeForestV2(tree, c); err == nil {
		t.Error("non-stochastic row must fail")
	}
}

// TestEncodeForestErrorsOnMissingEntry checks both encoders reject a forest
// that does not cover every privacy-level node.
func TestEncodeForestErrorsOnMissingEntry(t *testing.T) {
	tree, forest := generateTestForest(t)
	for node := range forest.Entries {
		delete(forest.Entries, node)
		break
	}
	if _, err := EncodeForestV1(tree, forest); err == nil {
		t.Error("v1 encoder must reject a partial forest")
	}
	if _, err := EncodeForestV2(tree, forest); err == nil {
		t.Error("v2 encoder must reject a partial forest")
	}
}

// TestDecodeForestV1Errors exercises the v1 validation paths.
func TestDecodeForestV1Errors(t *testing.T) {
	tree, forest := generateTestForest(t)
	good, err := EncodeForestV1(tree, forest)
	if err != nil {
		t.Fatal(err)
	}
	clone := func() *ForestResponse {
		b, _ := json.Marshal(good)
		var c ForestResponse
		_ = json.Unmarshal(b, &c)
		return &c
	}

	if _, err := DecodeForest(tree, clone()); err != nil {
		t.Fatalf("pristine response must decode: %v", err)
	}
	c := clone()
	c.Entries[0].RootQ = 999
	if _, err := DecodeForest(tree, c); err == nil {
		t.Error("foreign root must fail")
	}
	c = clone()
	c.Entries[0].Rows = c.Entries[0].Rows[:len(c.Entries[0].Rows)-1]
	if _, err := DecodeForest(tree, c); err == nil {
		t.Error("rows/leaves mismatch must fail")
	}
	c = clone()
	c.Entries[0].Rows[0][0] += 0.5
	if _, err := DecodeForest(tree, c); err == nil {
		t.Error("non-stochastic row must fail")
	}
	c = clone()
	c.Entries[0].Leaves[0] = [2]int{999, 999}
	if _, err := DecodeForest(tree, c); err == nil {
		t.Error("foreign leaf must fail")
	}
}

// TestHandlerWireV2Negotiation checks Accept-driven selection of the
// compact encoding and that the default client transparently consumes it.
func TestHandlerWireV2Negotiation(t *testing.T) {
	ts, _, _ := newTestServer(t)
	defer ts.Close()

	body := `{"privacy_l": 1, "delta": 0}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/matrices", strings.NewReader(body))
	req.Header.Set("Accept", ContentTypeForestV2)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, ContentTypeForestV2) {
		t.Fatalf("Accept v2 answered with Content-Type %q", ct)
	}
	var fr ForestResponseV2
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Entries) != 7 {
		t.Fatalf("v2 response has %d entries, want 7", len(fr.Entries))
	}

	// No Accept header keeps the v1 dense format.
	resp2, err := http.Post(ts.URL+"/v1/matrices", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") || strings.Contains(ct, ContentTypeForestV2) {
		t.Fatalf("default request answered with Content-Type %q", ct)
	}

	// The high-level client negotiates v2 end-to-end.
	c := NewClient(ts.URL)
	tree, _, err := c.FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	forest, err := c.FetchForest(tree, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Entries) != 7 {
		t.Fatalf("client decoded %d entries, want 7", len(forest.Entries))
	}
}

// TestHandlerGzip checks explicit gzip negotiation on the matrices route.
func TestHandlerGzip(t *testing.T) {
	ts, _, _ := newTestServer(t)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/matrices",
		strings.NewReader(`{"privacy_l": 1, "delta": 0}`))
	req.Header.Set("Accept-Encoding", "gzip")
	// DisableCompression keeps net/http from transparently gunzipping so the
	// encoding is observable.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", enc)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	var fr ForestResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Entries) != 7 {
		t.Fatalf("gzipped response has %d entries, want 7", len(fr.Entries))
	}
}

// TestHealthzAndStats covers the operational endpoints.
func TestHealthzAndStats(t *testing.T) {
	ts, _, _ := newTestServer(t)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz -> %d %q", resp.StatusCode, body)
	}

	// Generate something, then confirm the stats reflect it.
	if _, err := http.Post(ts.URL+"/v1/matrices", "application/json",
		strings.NewReader(`{"privacy_l": 1, "delta": 0}`)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Solves == 0 || st.Misses == 0 {
		t.Fatalf("stats after generation: %+v", st)
	}
	if st.Workers < 1 || st.CacheCapacityBytes < 1 {
		t.Fatalf("stats missing engine config: %+v", st)
	}
}

// TestConcurrentMatricesSingleflight fires identical concurrent HTTP
// requests and checks exactly one LP solve ran per privacy-level node.
func TestConcurrentMatricesSingleflight(t *testing.T) {
	ts, srv, _ := newTestServer(t)
	defer ts.Close()

	const callers = 6
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/matrices", "application/json",
				strings.NewReader(`{"privacy_l": 1, "delta": 1}`))
			if err != nil {
				errs[c] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", c, err)
		}
	}
	// Height-2 tree, level 1 -> 7 subtree nodes; singleflight + cache must
	// collapse 6 identical forest requests onto one solve each.
	if st := srv.Stats(); st.Solves != 7 {
		t.Fatalf("%d concurrent identical forest requests ran %d solves, want 7", callers, st.Solves)
	}
}

// TestHandlerTimeout checks an impossible deadline surfaces as 504.
func TestHandlerTimeout(t *testing.T) {
	_, srv, priors := newTestServer(t)
	h, err := NewHandler(srv, priors, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	h.Timeout = 1 // 1ns: expired before generation starts
	req := httptest.NewRequest(http.MethodPost, "/v1/matrices",
		strings.NewReader(`{"privacy_l": 1, "delta": 2}`))
	rec := httptest.NewRecorder()
	h.Mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out generation -> %d, want 504", rec.Code)
	}
}
