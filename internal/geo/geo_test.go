package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name string
		a, b LatLng
		want float64 // km
		tol  float64
	}{
		{"same point", LatLng{37.77, -122.42}, LatLng{37.77, -122.42}, 0, 1e-12},
		{"SF to LA", LatLng{37.7749, -122.4194}, LatLng{34.0522, -118.2437}, 559.12, 1.5},
		{"London to Paris", LatLng{51.5074, -0.1278}, LatLng{48.8566, 2.3522}, 343.5, 1.5},
		{"equator 1 deg lng", LatLng{0, 0}, LatLng{0, 1}, 111.19, 0.1},
		{"pole to pole", LatLng{90, 0}, LatLng{-90, 0}, math.Pi * EarthRadiusKm, 0.01},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Haversine(tc.a, tc.b)
			if math.Abs(got-tc.want) > tc.tol {
				t.Errorf("Haversine(%v,%v) = %.4f, want %.4f±%.2f", tc.a, tc.b, got, tc.want, tc.tol)
			}
		})
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2 float64) bool {
		a := LatLng{clampLat(lat1), clampLng(lng1)}
		b := LatLng{clampLat(lat2), clampLng(lng2)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2, lat3, lng3 float64) bool {
		a := LatLng{clampLat(lat1), clampLng(lng1)}
		b := LatLng{clampLat(lat2), clampLng(lng2)}
		c := LatLng{clampLat(lat3), clampLng(lng3)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineNonNegative(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2 float64) bool {
		a := LatLng{clampLat(lat1), clampLng(lng1)}
		b := LatLng{clampLat(lat2), clampLng(lng2)}
		return Haversine(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 { return clampTo(v, 90) }
func clampLng(v float64) float64 { return clampTo(v, 180) }

func clampTo(v, lim float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, lim)
}

func TestProjectionRoundTrip(t *testing.T) {
	origin := SanFrancisco.Center()
	pr := NewProjection(origin)
	f := func(dLat, dLng float64) bool {
		p := LatLng{
			Lat: origin.Lat + math.Mod(clampTo(dLat, 1), 0.2),
			Lng: origin.Lng + math.Mod(clampTo(dLng, 1), 0.2),
		}
		q := pr.Inverse(pr.Forward(p))
		return math.Abs(q.Lat-p.Lat) < 1e-9 && math.Abs(q.Lng-p.Lng) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionDistanceAgreesWithHaversine(t *testing.T) {
	// City-scale: projected Euclidean distance should match haversine to <1%.
	origin := SanFrancisco.Center()
	pr := NewProjection(origin)
	pts := []LatLng{
		{37.70, -122.52}, {37.83, -122.35}, {37.7749, -122.4194},
		{37.76, -122.45}, {37.80, -122.40},
	}
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			hav := Haversine(pts[i], pts[j])
			eu := pr.Forward(pts[i]).Dist(pr.Forward(pts[j]))
			if hav > 0.5 && math.Abs(hav-eu)/hav > 0.01 {
				t.Errorf("pts %d-%d: haversine %.4f vs projected %.4f (>1%% off)", i, j, hav, eu)
			}
		}
	}
}

func TestProjectionOrigin(t *testing.T) {
	origin := LatLng{37.77, -122.42}
	pr := NewProjection(origin)
	if got := pr.Origin(); got != origin {
		t.Errorf("Origin() = %v, want %v", got, origin)
	}
	xy := pr.Forward(origin)
	if xy.X != 0 || xy.Y != 0 {
		t.Errorf("Forward(origin) = %v, want (0,0)", xy)
	}
}

func TestXYOps(t *testing.T) {
	p, q := XY{3, 4}, XY{1, 2}
	if d := p.Dist(XY{0, 0}); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if s := p.Add(q); s != (XY{4, 6}) {
		t.Errorf("Add = %v", s)
	}
	if s := p.Sub(q); s != (XY{2, 2}) {
		t.Errorf("Sub = %v", s)
	}
	if s := p.Scale(2); s != (XY{6, 8}) {
		t.Errorf("Scale = %v", s)
	}
}

func TestBoundingBox(t *testing.T) {
	b := SanFrancisco
	if !b.Contains(b.Center()) {
		t.Error("box must contain its center")
	}
	if b.Contains(LatLng{0, 0}) {
		t.Error("box must not contain null island")
	}
	c := b.Center()
	if c.Lat <= b.MinLat || c.Lat >= b.MaxLat {
		t.Error("center latitude out of range")
	}
}

func TestLatLngValid(t *testing.T) {
	valid := []LatLng{{0, 0}, {90, 180}, {-90, -180}, {37.77, -122.42}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []LatLng{{91, 0}, {0, 181}, {-91, 0}, {0, -181}, {math.NaN(), 0}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}
