// Package geo provides the geodesic primitives CORGI builds on: latitude/
// longitude points, haversine great-circle distance, and a local
// equirectangular projection used to lay hexagonal grids over a region.
//
// All distances are in kilometers, matching the paper's convention of
// expressing the privacy budget epsilon in km^-1.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used by the haversine formula.
const EarthRadiusKm = 6371.0088

// LatLng is a geographic point in degrees.
type LatLng struct {
	Lat float64 // degrees, [-90, 90]
	Lng float64 // degrees, [-180, 180]
}

// String implements fmt.Stringer.
func (p LatLng) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lat, p.Lng)
}

// Valid reports whether the point lies in the legal lat/lng domain.
func (p LatLng) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

// Radians returns the point in radians.
func (p LatLng) Radians() (lat, lng float64) {
	return p.Lat * math.Pi / 180, p.Lng * math.Pi / 180
}

// Haversine returns the great-circle distance between a and b in kilometers.
// This is the distance function d_{i,j} used throughout the paper (Sec. 2.1)
// and the utility metric of Equ. (3).
func Haversine(a, b LatLng) float64 {
	lat1, lng1 := a.Radians()
	lat2, lng2 := b.Radians()
	dLat := lat2 - lat1
	dLng := lng2 - lng1
	sinLat := math.Sin(dLat / 2)
	sinLng := math.Sin(dLng / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLng*sinLng
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// XY is a point on a local planar projection, in kilometers.
type XY struct {
	X float64
	Y float64
}

// Dist returns the Euclidean distance between two projected points (km).
func (p XY) Dist(q XY) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p+q.
func (p XY) Add(q XY) XY { return XY{p.X + q.X, p.Y + q.Y} }

// Sub returns p-q.
func (p XY) Sub(q XY) XY { return XY{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p XY) Scale(f float64) XY { return XY{p.X * f, p.Y * f} }

// Projection is a local equirectangular (plate carrée) projection anchored at
// an origin point. Over city-scale regions (tens of km) it is accurate to a
// fraction of a percent, which is ample for grid construction; all *reported*
// distances still use Haversine on the unprojected coordinates.
type Projection struct {
	origin LatLng
	cosLat float64
}

// NewProjection returns a projection anchored at origin.
func NewProjection(origin LatLng) *Projection {
	lat, _ := origin.Radians()
	return &Projection{origin: origin, cosLat: math.Cos(lat)}
}

// Origin returns the anchor point.
func (pr *Projection) Origin() LatLng { return pr.origin }

// Forward maps a geographic point to local planar coordinates in km.
func (pr *Projection) Forward(p LatLng) XY {
	kmPerDegLat := math.Pi / 180 * EarthRadiusKm
	return XY{
		X: (p.Lng - pr.origin.Lng) * kmPerDegLat * pr.cosLat,
		Y: (p.Lat - pr.origin.Lat) * kmPerDegLat,
	}
}

// Inverse maps local planar coordinates back to a geographic point.
func (pr *Projection) Inverse(q XY) LatLng {
	kmPerDegLat := math.Pi / 180 * EarthRadiusKm
	return LatLng{
		Lat: pr.origin.Lat + q.Y/kmPerDegLat,
		Lng: pr.origin.Lng + q.X/(kmPerDegLat*pr.cosLat),
	}
}

// BoundingBox is a lat/lng axis-aligned rectangle.
type BoundingBox struct {
	MinLat, MinLng, MaxLat, MaxLng float64
}

// Contains reports whether p lies inside the box (inclusive).
func (b BoundingBox) Contains(p LatLng) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lng >= b.MinLng && p.Lng <= b.MaxLng
}

// Center returns the box midpoint.
func (b BoundingBox) Center() LatLng {
	return LatLng{Lat: (b.MinLat + b.MaxLat) / 2, Lng: (b.MinLng + b.MaxLng) / 2}
}

// SanFrancisco is the bounding box of the San Francisco region used by the
// paper's Gowalla sample (Sec. 6.1).
var SanFrancisco = BoundingBox{
	MinLat: 37.70, MinLng: -122.52,
	MaxLat: 37.83, MaxLng: -122.35,
}
