package session

import (
	"fmt"
	"sync"
	"testing"

	"corgi/internal/policy"
)

func managerWorld(t *testing.T) func(seed int64) *Session {
	t.Helper()
	// Reuse the session test world via the testing.T plumbing.
	tree, entry, priors := testWorld(t, 2)
	return func(seed int64) *Session {
		s, err := New(Config{
			Tree: tree, Entry: entry, Delta: 0,
			Policy: policy.Policy{PrivacyLevel: 2}, Priors: priors, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func TestManagerLRUAndStats(t *testing.T) {
	mk := managerWorld(t)
	m := NewManager(2)
	key := func(uid int64) Key { return Key{Region: "sf", UID: uid} }

	for uid := int64(0); uid < 3; uid++ {
		if _, err := m.GetOrCreate(key(uid), func() (*Session, error) { return mk(uid), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Active != 2 || st.Created != 3 || st.Evicted != 1 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	// uid 0 was evicted; uids 1 and 2 are hits.
	calls := 0
	for uid := int64(1); uid <= 2; uid++ {
		if _, err := m.GetOrCreate(key(uid), func() (*Session, error) { calls++; return mk(uid), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 0 {
		t.Fatalf("resident sessions rebuilt %d times", calls)
	}
	if st := m.Stats(); st.Hits != 2 {
		t.Fatalf("hits = %d, want 2", st.Hits)
	}
}

func TestManagerLRUOrder(t *testing.T) {
	mk := managerWorld(t)
	m := NewManager(2)
	key := func(uid int64) Key { return Key{UID: uid} }
	for uid := int64(0); uid < 2; uid++ {
		uid := uid
		m.GetOrCreate(key(uid), func() (*Session, error) { return mk(uid), nil })
	}
	// Touch uid 0 so uid 1 is the cold end, then overflow.
	m.GetOrCreate(key(0), func() (*Session, error) { t.Fatal("rebuilt"); return nil, nil })
	m.GetOrCreate(key(2), func() (*Session, error) { return mk(2), nil })
	built := false
	m.GetOrCreate(key(0), func() (*Session, error) { built = true; return mk(0), nil })
	if built {
		t.Fatal("recently-used session was evicted")
	}
	m.GetOrCreate(key(1), func() (*Session, error) { built = true; return mk(1), nil })
	if !built {
		t.Fatal("cold-end session survived overflow")
	}
}

func TestManagerCreateError(t *testing.T) {
	m := NewManager(4)
	wantErr := fmt.Errorf("boom")
	if _, err := m.GetOrCreate(Key{UID: 1}, func() (*Session, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if st := m.Stats(); st.Active != 0 || st.Created != 0 {
		t.Fatalf("failed create left state: %+v", st)
	}
}

// TestManagerConcurrent races creators and readers; same-key racers must
// converge on one session.
func TestManagerConcurrent(t *testing.T) {
	mk := managerWorld(t)
	m := NewManager(64)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		got  = map[int64]*Session{}
		fail bool
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for uid := int64(0); uid < 16; uid++ {
				uid := uid
				s, err := m.GetOrCreate(Key{UID: uid}, func() (*Session, error) { return mk(uid), nil })
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, ok := got[uid]; ok && prev != s {
					fail = true
				}
				got[uid] = s
				mu.Unlock()
				if _, err := s.DrawCell(s.b.Source().SupportLeaves()[0]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail {
		t.Fatal("same key handed out distinct sessions")
	}
	if st := m.Stats(); st.Draws == 0 {
		t.Fatal("draw totals not aggregated")
	}
}

// TestManagerDrawsSurviveEviction pins the stats bugfix: fleet-wide draw
// and re-anchor totals must be monotone — an LRU eviction folds the
// departing session's counters into the manager instead of dropping them.
func TestManagerDrawsSurviveEviction(t *testing.T) {
	mk := managerWorld(t)
	m := NewManager(2)
	key := func(uid int64) Key { return Key{UID: uid} }

	for uid := int64(0); uid < 2; uid++ {
		s, err := m.GetOrCreate(key(uid), func() (*Session, error) { return mk(uid), nil })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.DrawCellN(s.b.Source().SupportLeaves()[0], 5); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Stats()
	if before.Draws != 10 {
		t.Fatalf("draws before eviction = %d, want 10", before.Draws)
	}
	// Overflow the LRU: uid 0's session (5 draws) is evicted.
	if _, err := m.GetOrCreate(key(2), func() (*Session, error) { return mk(2), nil }); err != nil {
		t.Fatal(err)
	}
	after := m.Stats()
	if after.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", after.Evicted)
	}
	if after.Draws < before.Draws {
		t.Fatalf("draw total went backwards across eviction: %d -> %d", before.Draws, after.Draws)
	}
	if after.Draws != 10 {
		t.Fatalf("draws after eviction = %d, want 10 (evicted session's count retained)", after.Draws)
	}
}
