// Package session implements per-user report sessions: the stateful hot
// path of the report pipeline. A session binds one privacy-forest entry
// (the subtree covering the user's location), an evaluated customization
// policy <Privacy_l, Precision_l, User_Preferences> (Sec. 3.2), and a
// seeded RNG, and then serves obfuscated-location draws in O(1) per report
// via Walker alias tables (internal/sample).
//
// Unlike core.GenerateObfuscatedLocation — which materializes the whole
// pruned matrix (Sec. 4.3) and precision-reduced matrix (Sec. 4.5) before
// sampling one row — a session works row-wise: it prunes and renormalizes
// only the rows the drawn-from distribution actually depends on (one row
// at leaf precision; one precision group's rows otherwise), builds the
// alias table for that row once, and caches it for every subsequent draw.
// The full n x n customized matrix never exists, which is what makes the
// per-report cost independent of how many distinct users a server is
// tracking.
//
// Sessions are safe for concurrent use: the internal *rand.Rand is
// serialized under the session mutex. Draw sequences are deterministic
// per seed, the property the /v1/report equivalence guarantee (a seeded
// remote report equals the local draw for the same inputs) rests on.
package session

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/sample"
)

// minMass mirrors obf.Matrix.Prune: a row retaining less mass than this
// after pruning makes renormalization numerically unstable.
const minMass = 1e-9

// ErrUnsampleable marks a draw that failed because the matrix data cannot
// support it — a row degenerate after pruning, or an alias build over a
// zero-mass row. These are server-side data conditions, not request
// faults: the serving layer maps them to 5xx, unlike the ErrBadReport
// family of caller mistakes.
var ErrUnsampleable = errors.New("session: row unsampleable")

// Config binds everything one report session needs.
type Config struct {
	// Tree is the region's location tree.
	Tree *loctree.Tree
	// Entry is the privacy-forest entry for the subtree that covers the
	// user's true location at Policy.PrivacyLevel.
	Entry *core.ForestEntry
	// Delta is the prune budget Entry was generated with (Forest.Delta);
	// New verifies the policy's prune set fits it.
	Delta int
	// Policy is the user's customization triple.
	Policy policy.Policy
	// Attrs provides per-leaf attributes for preference evaluation; nil is
	// fine when the policy has no preferences.
	Attrs map[loctree.NodeID]policy.Attributes
	// Pruned, when non-nil, is the precomputed prune set — the Entry
	// leaves failing Policy.Preferences — and New skips re-evaluating
	// them (callers like registry.Report already evaluated once to size
	// delta; an empty-but-non-nil slice means "evaluated, nothing
	// pruned"). Leave nil to have New evaluate Preferences over Attrs.
	Pruned []loctree.NodeID
	// Priors supplies leaf priors for precision reduction (Equ. 17);
	// required when Policy.PrecisionLevel > 0.
	Priors *loctree.Priors
	// Seed initializes the session RNG; equal seeds yield equal draw
	// sequences.
	Seed int64
}

// Session is one user's bound report stream. Create with New.
type Session struct {
	tree   *loctree.Tree
	entry  *core.ForestEntry
	pol    policy.Policy
	priors *loctree.Priors

	leafIdx    map[loctree.NodeID]int // entry leaf -> matrix row/col
	dropIdx    []bool                 // by entry leaf position
	pruned     []loctree.NodeID
	prunedSet  map[loctree.NodeID]bool
	keptLeaves []loctree.NodeID
	keep       []int // kept entry-leaf positions in order

	// nodes are the report outcomes (kept leaves, or precision-level
	// groups); rowIndex maps a row node to its index in nodes; groups
	// holds, per node, the keptLeaves positions it aggregates (precision
	// mode only).
	nodes    []loctree.NodeID
	rowIndex map[loctree.NodeID]int
	groups   [][]int

	mu       sync.Mutex
	rng      *rand.Rand
	rowAlias map[int]*sample.Alias

	draws atomic.Uint64
}

// New evaluates the policy against the entry and prepares the session:
// preferences decide the prune set S over the subtree's leaves (step 2-3
// of Fig. 8), the δ-prunability of the entry is verified against |S|
// (Sec. 5.3: the reserved budget must cover the realized prune set), and
// the report node set is fixed. No alias table is built yet — rows build
// lazily on first draw.
func New(cfg Config) (*Session, error) {
	if cfg.Tree == nil || cfg.Entry == nil || cfg.Entry.Matrix == nil {
		return nil, fmt.Errorf("session: nil tree or entry")
	}
	if err := cfg.Policy.Validate(cfg.Tree.Height()); err != nil {
		return nil, err
	}
	if cfg.Policy.PrecisionLevel > 0 && cfg.Priors == nil {
		return nil, fmt.Errorf("session: precision level %d needs priors", cfg.Policy.PrecisionLevel)
	}
	s := &Session{
		tree:     cfg.Tree,
		entry:    cfg.Entry,
		pol:      cfg.Policy,
		priors:   cfg.Priors,
		leafIdx:  make(map[loctree.NodeID]int, len(cfg.Entry.Leaves)),
		dropIdx:  make([]bool, len(cfg.Entry.Leaves)),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		rowAlias: map[int]*sample.Alias{},
	}
	for i, l := range cfg.Entry.Leaves {
		s.leafIdx[l] = i
	}
	switch {
	case cfg.Pruned != nil:
		for _, n := range cfg.Pruned {
			if _, ok := s.leafIdx[n]; !ok {
				return nil, fmt.Errorf("session: pruned leaf %v not in subtree %v", n, cfg.Entry.Root)
			}
		}
		s.pruned = cfg.Pruned
	case len(cfg.Policy.Preferences) > 0:
		pruned, err := core.EvalPreferences(cfg.Entry.Leaves, cfg.Policy, cfg.Attrs)
		if err != nil {
			return nil, err
		}
		s.pruned = pruned
	}
	if len(s.pruned) > cfg.Delta {
		return nil, fmt.Errorf("session: preferences prune %d locations but the matrix is only %d-prunable (Sec. 5.3 tradeoff)",
			len(s.pruned), cfg.Delta)
	}
	s.prunedSet = make(map[loctree.NodeID]bool, len(s.pruned))
	for _, n := range s.pruned {
		s.prunedSet[n] = true
		s.dropIdx[s.leafIdx[n]] = true
	}
	for i, l := range cfg.Entry.Leaves {
		if !s.dropIdx[i] {
			s.keep = append(s.keep, i)
			s.keptLeaves = append(s.keptLeaves, l)
		}
	}
	if len(s.keptLeaves) == 0 {
		return nil, fmt.Errorf("session: preferences prune every location in the subtree")
	}

	s.nodes = s.keptLeaves
	if cfg.Policy.PrecisionLevel > 0 {
		groups, groupNodes, err := core.GroupByAncestor(cfg.Tree, s.keptLeaves, cfg.Policy.PrecisionLevel)
		if err != nil {
			return nil, err
		}
		s.groups = groups
		s.nodes = groupNodes
	}
	s.rowIndex = make(map[loctree.NodeID]int, len(s.nodes))
	for i, n := range s.nodes {
		s.rowIndex[n] = i
	}
	return s, nil
}

// Nodes returns the report node set (kept leaves, or precision groups).
func (s *Session) Nodes() []loctree.NodeID { return s.nodes }

// Pruned returns the leaves the policy's preferences removed.
func (s *Session) Pruned() []loctree.NodeID { return s.pruned }

// Draws reports how many reports the session has served.
func (s *Session) Draws() uint64 { return s.draws.Load() }

// Draw locates the true position's leaf cell and draws one obfuscated
// report node.
func (s *Session) Draw(real geo.LatLng) (loctree.NodeID, error) {
	leaf, ok := s.tree.Locate(real, 0)
	if !ok {
		return loctree.NodeID{}, fmt.Errorf("session: location %v outside the region", real)
	}
	return s.DrawCell(leaf)
}

// DrawCell draws one obfuscated report for a true leaf cell. The cell must
// belong to the session's subtree; a cell the user's own preferences
// pruned is an error at leaf precision (there is no row to draw from),
// matching Algorithm 4.
func (s *Session) DrawCell(leaf loctree.NodeID) (loctree.NodeID, error) {
	out, err := s.DrawCellN(leaf, 1)
	if err != nil {
		return loctree.NodeID{}, err
	}
	return out[0], nil
}

// DrawCellN draws n reports for one true cell as one atomic sequence: the
// session mutex is held across all n draws, so concurrent requests
// sharing a session (batch items with the same uid/seed/policy) cannot
// interleave inside another request's sequence — each Count-N response is
// a contiguous slice of the session's deterministic stream.
func (s *Session) DrawCellN(leaf loctree.NodeID, n int) ([]loctree.NodeID, error) {
	if n < 1 {
		return nil, fmt.Errorf("session: draw count %d must be >= 1", n)
	}
	if _, ok := s.leafIdx[leaf]; !ok {
		return nil, fmt.Errorf("session: cell %v outside subtree %v", leaf, s.entry.Root)
	}
	rowNode := leaf
	if s.pol.PrecisionLevel > 0 {
		anc, ok := s.tree.AncestorAt(leaf, s.pol.PrecisionLevel)
		if !ok {
			return nil, fmt.Errorf("session: no ancestor of %v at precision level %d", leaf, s.pol.PrecisionLevel)
		}
		rowNode = anc
	} else if s.prunedSet[leaf] {
		return nil, fmt.Errorf("session: preferences prune the user's own location %v at precision 0", leaf)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	row, ok := s.rowIndex[rowNode]
	if !ok {
		return nil, fmt.Errorf("session: node %v missing from the customized report set", rowNode)
	}
	a, err := s.aliasForRowLocked(row, leaf)
	if err != nil {
		return nil, err
	}
	out := make([]loctree.NodeID, n)
	for i := range out {
		out[i] = s.nodes[a.Draw(s.rng)]
	}
	s.draws.Add(uint64(n))
	return out, nil
}

// aliasForRowLocked returns the alias table for one report row, building
// and caching it on first use. Caller holds s.mu.
func (s *Session) aliasForRowLocked(row int, leaf loctree.NodeID) (*sample.Alias, error) {
	if a, ok := s.rowAlias[row]; ok {
		return a, nil
	}
	a, err := s.buildRow(row, leaf)
	if err != nil {
		return nil, err
	}
	s.rowAlias[row] = a
	return a, nil
}

// buildRow assembles the report distribution for one row without ever
// materializing the customized matrix:
//
//   - leaf precision, empty prune set: the entry's own shared per-row
//     alias cache serves directly (byte-accounted in the engine LRU);
//   - leaf precision, pruned: the matrix row minus the dropped columns,
//     renormalized (Sec. 4.3) inside the alias build;
//   - coarser precision: the Equ. 17 aggregation restricted to the rows
//     of the drawn-from group — weight_j = Σ_{u∈g_row} p_u/mass_u ·
//     Σ_{v∈g_j} z[u][v], with the constant 1/p_row dropped since the
//     alias build normalizes.
func (s *Session) buildRow(row int, leaf loctree.NodeID) (*sample.Alias, error) {
	m := s.entry.Matrix
	if s.pol.PrecisionLevel == 0 {
		orig := s.leafIdx[leaf]
		if len(s.pruned) == 0 {
			a, err := s.entry.AliasRow(orig)
			if err != nil {
				return nil, fmt.Errorf("%w: row %v: %v", ErrUnsampleable, leaf, err)
			}
			return a, nil
		}
		a, _, err := sample.NewSubset(m.Row(orig), s.dropIdx)
		if err != nil {
			return nil, fmt.Errorf("%w: row %v: %v", ErrUnsampleable, leaf, err)
		}
		return a, nil
	}

	weights := make([]float64, len(s.nodes))
	for _, u := range s.groups[row] { // u indexes keptLeaves
		orig := s.keep[u]
		r := m.Row(orig)
		removed := 0.0
		for l, dropped := range s.dropIdx {
			if dropped {
				removed += r[l]
			}
		}
		mass := 1 - removed
		if mass < minMass {
			return nil, fmt.Errorf("%w: row %v retains %.3g probability mass after pruning",
				ErrUnsampleable, s.keptLeaves[u], mass)
		}
		pu := s.priors.Of(s.tree, s.keptLeaves[u])
		scale := pu / mass
		for j, gj := range s.groups {
			sum := 0.0
			for _, v := range gj {
				sum += r[s.keep[v]]
			}
			weights[j] += scale * sum
		}
	}
	a, err := sample.New(weights)
	if err != nil {
		return nil, fmt.Errorf("%w: precision row %v: %v", ErrUnsampleable, s.nodes[row], err)
	}
	return a, nil
}

// Key addresses one session in a Manager: the region, the caller's user
// id, the draw seed, the policy fingerprint, the subtree root the session
// is bound to, and — for preference-bearing policies only — the true cell
// the attributes were anchored at. Everything that changes the draw
// distribution or the RNG stream is part of the key, so a stale session
// can never serve a changed policy; the cell matters exactly when
// preferences do, because attribute evaluation (the "distance" attribute
// in particular) is relative to the user's location, so a user who moved
// needs a freshly pruned session rather than one anchored at their old
// cell. Preference-free sessions key cell-independently and are shared
// across every cell of the subtree.
type Key struct {
	Region string
	UID    int64
	Seed   int64
	Policy string
	Root   loctree.NodeID
	// Cell is the attribute anchor; zero for preference-free policies.
	Cell loctree.NodeID
}

// PolicyFingerprint returns a stable digest of a policy for session
// keying. Two policies with identical levels and identical preference
// lists (order-sensitive, as the wire carries them) share a fingerprint.
func PolicyFingerprint(pol policy.Policy) string {
	canon, err := json.Marshal(pol)
	if err != nil {
		// Policy marshals scalars and named types only; Marshal cannot
		// fail on it.
		panic(fmt.Sprintf("session: marshaling policy: %v", err))
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:16])
}
