// Package session implements per-user report sessions: the stateful hot
// path of the report pipeline. A session binds one privacy-forest entry
// (the subtree covering the user's location), an evaluated customization
// policy <Privacy_l, Precision_l, User_Preferences> (Sec. 3.2), and a
// seeded RNG, and then serves obfuscated-location draws in O(1) per report
// via Walker alias tables (internal/sample).
//
// The customization itself — preference pruning, Sec. 4.3 renormalization,
// Equ. 17 precision grouping — lives in internal/mechanism: a session is
// one mechanism.Binding plus the RNG stream and draw counters. The binding
// works row-wise: it prunes and renormalizes only the rows the drawn-from
// distribution actually depends on, builds the alias table for that row
// once, and caches it for every subsequent draw. The full n x n customized
// matrix never exists, which is what makes the per-report cost independent
// of how many distinct users a server is tracking.
//
// Sessions are mobility-aware: a session is the user's stream, not the
// subtree's. When a moving user's reported cell leaves the bound subtree,
// Rebind swaps in the forest entry covering the new location — re-pruning
// under the carried-forward policy — while the RNG stream keeps advancing
// uninterrupted. A seeded session replaying the same move sequence
// therefore yields the same draw sequence regardless of how many subtree
// boundaries the trajectory crosses, which is what keeps the /v1/report
// equivalence guarantee alive for trajectories, not just fixed cells.
//
// Sessions are safe for concurrent use: the internal *rand.Rand and the
// live binding are serialized under the session mutex. Draw sequences are
// deterministic per seed.
package session

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"corgi/internal/codec"
	"corgi/internal/geo"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/policy"
)

// ErrUnsampleable re-exports mechanism.ErrUnsampleable: a draw that failed
// because the matrix data cannot support it — a row degenerate after
// pruning, or an alias build over a zero-mass row. These are server-side
// data conditions, not request faults: the serving layer maps them to 5xx,
// unlike the ErrBadReport family of caller mistakes.
var ErrUnsampleable = mechanism.ErrUnsampleable

// ErrOutsideSubtree re-exports mechanism.ErrOutsideSubtree: a draw for a
// cell the session's current binding does not cover. Under mobility this
// is retryable: a concurrent request on the same (uid, seed, policy)
// stream may have re-anchored the shared session between the caller's
// binding check and its draw, and registry.Report re-anchors and retries
// on it instead of failing the request.
var ErrOutsideSubtree = mechanism.ErrOutsideSubtree

// Config binds everything one report session needs.
type Config struct {
	// Tree is the region's location tree.
	Tree *loctree.Tree
	// Entry is the privacy-forest entry (any mechanism.Source) for the
	// subtree that covers the user's true location at Policy.PrivacyLevel.
	Entry mechanism.Source
	// Delta is the prune budget Entry was generated with (Forest.Delta);
	// New verifies the policy's prune set fits it.
	Delta int
	// Policy is the user's customization triple.
	Policy policy.Policy
	// Attrs provides per-leaf attributes for preference evaluation; nil is
	// fine when the policy has no preferences.
	Attrs map[loctree.NodeID]policy.Attributes
	// Pruned, when non-nil, is the precomputed prune set — the Entry
	// leaves failing Policy.Preferences — and New skips re-evaluating
	// them (callers like registry.Report already evaluated once to size
	// delta; an empty-but-non-nil slice means "evaluated, nothing
	// pruned"). Leave nil to have New evaluate Preferences over Attrs.
	Pruned []loctree.NodeID
	// Anchor records the true cell the preference attributes were
	// evaluated at (the "distance" attribute is relative to the user's
	// location). The mobility layer compares it against the current report
	// cell to decide when a preference-bearing session must re-anchor even
	// inside one subtree. Zero for preference-free policies.
	Anchor loctree.NodeID
	// Priors supplies leaf priors for precision reduction (Equ. 17);
	// required when Policy.PrecisionLevel > 0.
	Priors *loctree.Priors
	// Seed initializes the session RNG; equal seeds yield equal draw
	// sequences.
	Seed int64
	// Epsilon is the Geo-Ind budget the entry was generated under,
	// surfaced in Meta. Metadata only: it never changes a weight.
	Epsilon float64
}

// Rebind re-anchors a live session onto a new forest entry (see
// Session.Rebind); it is Config minus the per-session immutables.
type Rebind struct {
	// Entry is the forest entry covering the user's new location at the
	// session policy's privacy level.
	Entry mechanism.Source
	// Delta is the prune budget Entry was generated with.
	Delta int
	// Attrs / Pruned mirror Config: the prune set over Entry's leaves,
	// precomputed or evaluated here from Attrs.
	Attrs  map[loctree.NodeID]policy.Attributes
	Pruned []loctree.NodeID
	// Anchor is the new attribute anchor cell (zero when preference-free).
	Anchor loctree.NodeID
}

// Session is one user's bound report stream. Create with New.
type Session struct {
	tree    *loctree.Tree
	pol     policy.Policy
	priors  *loctree.Priors
	seed    int64
	epsilon float64

	mu  sync.Mutex
	b   *mechanism.Binding
	rng *rand.Rand

	draws     atomic.Uint64
	reanchors atomic.Uint64
}

// bind evaluates the policy against one forest entry through the shared
// mechanism implementation (step 2-3 of Fig. 8, the Sec. 5.3 δ admission
// check, and the report node set). No alias table is built yet — rows
// build lazily on first draw.
func (s *Session) bind(entry mechanism.Source, delta int, pruned []loctree.NodeID,
	attrs map[loctree.NodeID]policy.Attributes, anchor loctree.NodeID) (*mechanism.Binding, error) {
	return mechanism.Bind(mechanism.Config{
		Tree:    s.tree,
		Source:  entry,
		Delta:   delta,
		Policy:  s.pol,
		Attrs:   attrs,
		Pruned:  pruned,
		Anchor:  anchor,
		Priors:  s.priors,
		Epsilon: s.epsilon,
	})
}

// New validates the policy, prepares the initial binding, and seeds the
// RNG stream the session keeps for its whole life — including across
// Rebind re-anchors.
func New(cfg Config) (*Session, error) {
	if cfg.Tree == nil {
		return nil, fmt.Errorf("session: nil tree")
	}
	if err := cfg.Policy.Validate(cfg.Tree.Height()); err != nil {
		return nil, err
	}
	if cfg.Policy.PrecisionLevel > 0 && cfg.Priors == nil {
		return nil, fmt.Errorf("session: precision level %d needs priors", cfg.Policy.PrecisionLevel)
	}
	s := &Session{
		tree:    cfg.Tree,
		pol:     cfg.Policy,
		priors:  cfg.Priors,
		seed:    cfg.Seed,
		epsilon: cfg.Epsilon,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	b, err := s.bind(cfg.Entry, cfg.Delta, cfg.Pruned, cfg.Attrs, cfg.Anchor)
	if err != nil {
		return nil, err
	}
	s.b = b
	return s, nil
}

// Rebind re-anchors the session onto a new forest entry — the mobility
// move: the policy, seed, and RNG position carry forward untouched, only
// the subtree binding (prune set, report node set, alias cache) is
// rebuilt. The binding is assembled outside the session lock, so in-flight
// draws against the old subtree finish on the old binding; a failed rebind
// leaves the session exactly as it was.
func (s *Session) Rebind(r Rebind) error {
	b, err := s.bind(r.Entry, r.Delta, r.Pruned, r.Attrs, r.Anchor)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.b = b
	s.mu.Unlock()
	s.reanchors.Add(1)
	return nil
}

// Degraded reports whether the current binding serves from a degraded
// (planar-Laplace fallback) forest entry rather than an LP-optimal one.
func (s *Session) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Source().IsDegraded()
}

// Meta summarizes the current binding: ε, support size, prune size,
// precision grouping (the mechanism row metadata).
func (s *Session) Meta() mechanism.RowMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Meta()
}

// Upgrade swaps the session's degraded binding for one backed by the
// LP-optimal entry that replaced it, without disturbing the RNG stream or
// the re-anchor counter: the swap is invisible to the draw sequence's
// position (each alias draw consumes exactly one RNG value regardless of
// which matrix backs it), so a session that started on the fallback and
// upgraded mid-stream stays seed-deterministic from the swap onward.
//
// Upgrade is a no-op (returning false) unless the current binding is
// degraded and entry covers the same subtree root; the prune set and
// attribute anchor carry forward unchanged, since preferences were
// evaluated against the same leaf set. A concurrent Rebind between the
// degraded check and the swap also aborts the upgrade — the session has
// moved on, and the new subtree's own entry governs.
func (s *Session) Upgrade(entry mechanism.Source, delta int) (bool, error) {
	if entry == nil || entry.Dim() == 0 || entry.IsDegraded() {
		return false, nil
	}
	s.mu.Lock()
	cur := s.b
	s.mu.Unlock()
	if !cur.Source().IsDegraded() || cur.Root() != entry.SubtreeRoot() {
		return false, nil
	}
	pruned := cur.Pruned()
	if pruned == nil {
		// Non-nil means "already evaluated, nothing pruned": the bind must
		// not re-run preference evaluation (the attrs are long gone).
		pruned = []loctree.NodeID{}
	}
	b, err := s.bind(entry, delta, pruned, nil, cur.Anchor())
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.b != cur {
		return false, nil // lost a race with Rebind or another Upgrade
	}
	s.b = b
	return true, nil
}

// Root returns the subtree root of the current binding.
func (s *Session) Root() loctree.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Root()
}

// Anchor returns the attribute anchor cell of the current binding (zero
// for preference-free policies).
func (s *Session) Anchor() loctree.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Anchor()
}

// Covers reports whether the current binding's subtree contains leaf.
func (s *Session) Covers(leaf loctree.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Covers(leaf)
}

// Policy returns the customization triple the session carries across
// re-anchors.
func (s *Session) Policy() policy.Policy { return s.pol }

// Nodes returns the report node set (kept leaves, or precision groups).
func (s *Session) Nodes() []loctree.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Nodes()
}

// Pruned returns the leaves the policy's preferences removed under the
// current binding.
func (s *Session) Pruned() []loctree.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Pruned()
}

// Draws reports how many reports the session has served.
func (s *Session) Draws() uint64 { return s.draws.Load() }

// Reanchors reports how many times the session re-anchored onto a new
// subtree.
func (s *Session) Reanchors() uint64 { return s.reanchors.Load() }

// Draw locates the true position's leaf cell and draws one obfuscated
// report node.
func (s *Session) Draw(real geo.LatLng) (loctree.NodeID, error) {
	leaf, ok := s.tree.Locate(real, 0)
	if !ok {
		return loctree.NodeID{}, fmt.Errorf("session: location %v outside the region", real)
	}
	return s.DrawCell(leaf)
}

// DrawCell draws one obfuscated report for a true leaf cell. The cell must
// belong to the session's current subtree; a cell the user's own
// preferences pruned is an error at leaf precision (there is no row to
// draw from), matching Algorithm 4.
func (s *Session) DrawCell(leaf loctree.NodeID) (loctree.NodeID, error) {
	out, err := s.DrawCellN(leaf, 1)
	if err != nil {
		return loctree.NodeID{}, err
	}
	return out[0], nil
}

// DrawCellN draws n reports for one true cell as one atomic sequence: the
// session mutex is held across all n draws, so concurrent requests
// sharing a session (batch items with the same uid/seed/policy) cannot
// interleave inside another request's sequence — each Count-N response is
// a contiguous slice of the session's deterministic stream.
func (s *Session) DrawCellN(leaf loctree.NodeID, n int) ([]loctree.NodeID, error) {
	if n < 1 {
		return nil, fmt.Errorf("session: draw count %d must be >= 1", n)
	}
	out := make([]loctree.NodeID, n)
	if err := s.DrawCellNInto(leaf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DrawCellNInto is DrawCellN drawing len(out) reports into a caller-owned
// slice, so the serving layer can recycle result buffers (sync.Pool)
// instead of allocating per request. The draw semantics — atomicity, error
// cases, RNG consumption — are exactly DrawCellN's.
func (s *Session) DrawCellNInto(leaf loctree.NodeID, out []loctree.NodeID) error {
	if len(out) < 1 {
		return fmt.Errorf("session: draw count %d must be >= 1", len(out))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.b
	row, err := b.RowFor(leaf)
	if err != nil {
		return err
	}
	a, err := b.Alias(row)
	if err != nil {
		return err
	}
	nodes := b.Nodes()
	for i := range out {
		out[i] = nodes[a.Draw(s.rng)]
	}
	s.draws.Add(uint64(len(out)))
	return nil
}

// DetachLease serializes the session's current binding into a lease bundle
// a client can draw from without the server: the exact per-row weight
// vectors (full float64 precision — quantizing would shift alias
// thresholds and break draw equivalence), the report node set, the prune
// set, and the RNG coordinates (seed + position). It then burns n variates
// from the session's own RNG stream, pre-advancing it past the leased
// window: the resident stream and the client's detached stream never
// overlap, and a later server-side draw continues exactly where an
// n-draw client that used its whole cap would have left the stream.
// (A client that draws fewer than n forfeits the unused positions — the
// privacy-conservative direction, mirroring how its pre-paid epsilon is
// forfeited.)
//
// Rows the live path would refuse (degenerate after pruning) come back as
// empty rows: the client errors on them without consuming RNG, exactly as
// the server does when the alias build fails.
//
// leaf anchors the detach the way it anchors a draw: if the current
// binding does not cover it (a concurrent request re-anchored the shared
// session), DetachLease fails with ErrOutsideSubtree before burning any
// variate, so the caller's re-anchor-and-retry loop keeps the stream
// position exact — the same contract DrawCellN gives the report path.
func (s *Session) DetachLease(leaf loctree.NodeID, n int) (*codec.LeaseBundle, error) {
	if n < 1 {
		return nil, fmt.Errorf("session: lease draw cap %d must be >= 1", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.b
	if !b.Covers(leaf) {
		return nil, fmt.Errorf("%w: cell %v, subtree %v", ErrOutsideSubtree, leaf, b.Root())
	}
	nodes := b.Nodes()
	bundle := &codec.LeaseBundle{
		Root:           b.Root(),
		PrecisionLevel: s.pol.PrecisionLevel,
		Degraded:       b.Source().IsDegraded(),
		Seed:           s.seed,
		RNGPos:         s.draws.Load(),
		Pruned:         append([]loctree.NodeID(nil), b.Pruned()...),
		Nodes:          append([]loctree.NodeID(nil), nodes...),
		Rows:           make([][]float64, len(nodes)),
	}
	for i := range nodes {
		w, err := b.DetachRow(i)
		if err != nil {
			if !errors.Is(err, ErrUnsampleable) {
				return nil, err
			}
			continue // encoded as an empty (unsampleable) row
		}
		bundle.Rows[i] = w
	}
	for i := 0; i < n; i++ {
		s.rng.Float64()
	}
	s.draws.Add(uint64(n))
	return bundle, nil
}

// FastForward advances the session's RNG stream to absolute position pos
// (a draws-consumed count — every alias draw and every leased position
// consumes exactly one variate). It is forward-only: a position at or
// behind the current one is a no-op, never a rewind. The lease pipeline
// uses it to rebuild stream continuity after a session eviction — a
// renewal token carries the position its lease ends at, and a freshly
// re-created session fast-forwards there before detaching the next lease.
func (s *Session) FastForward(pos uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.draws.Load()
	for ; cur < pos; cur++ {
		s.rng.Float64()
		s.draws.Add(1)
	}
}

// Key addresses one session in a Manager: the region, the caller's user
// id, the draw seed, and the policy fingerprint. The key deliberately
// excludes the subtree and the true cell — a session is the user's
// continuous stream, and mobility (changing subtree, changing attribute
// anchor) is handled by re-anchoring the resident session rather than
// keying a new one, which is what keeps one seeded RNG stream running
// across a whole trajectory. Anything that changes the draw distribution
// irreconcilably (the policy, the seed) remains part of the key, so a
// stale session can never serve a changed policy.
type Key struct {
	Region string
	UID    int64
	Seed   int64
	Policy string
}

// PolicyFingerprint returns a stable digest of a policy for session
// keying. Two policies with identical levels and identical preference
// lists (order-sensitive, as the wire carries them) share a fingerprint.
func PolicyFingerprint(pol policy.Policy) string {
	canon, err := json.Marshal(pol)
	if err != nil {
		// Policy marshals scalars and named types only; Marshal cannot
		// fail on it.
		panic(fmt.Sprintf("session: marshaling policy: %v", err))
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:16])
}
