package session

import (
	"container/list"
	"sync"
)

// DefaultCap bounds a Manager's live session count when the configured cap
// is not positive. Sessions are small (a few cached alias rows each), so
// the default leans generous.
const DefaultCap = 4096

// Stats is a point-in-time snapshot of one manager's counters.
type Stats struct {
	// Active is the number of sessions currently resident.
	Active int `json:"active"`
	// Cap is the configured bound.
	Cap int `json:"cap"`
	// Created counts sessions built (misses); Hits counts lookups served
	// by a resident session; Evicted counts LRU evictions.
	Created uint64 `json:"created"`
	Hits    uint64 `json:"hits"`
	Evicted uint64 `json:"evicted"`
	// Draws totals the reports drawn through every session the manager has
	// admitted: resident sessions' live counters plus the counts drained
	// from sessions at eviction (and from discarded admission-race
	// losers). The total is monotone — an LRU eviction can never make the
	// fleet-wide draw counter go backwards.
	Draws uint64 `json:"draws"`
	// Reanchors totals mobility re-anchors the same way (resident live
	// counters plus drained).
	Reanchors uint64 `json:"reanchors"`
}

// Merge accumulates o into s, for fleet-wide aggregation across shards.
func (s *Stats) Merge(o Stats) {
	s.Active += o.Active
	s.Cap += o.Cap
	s.Created += o.Created
	s.Hits += o.Hits
	s.Evicted += o.Evicted
	s.Draws += o.Draws
	s.Reanchors += o.Reanchors
}

// Manager is a bounded LRU of live report sessions keyed by Key. A user's
// repeat reports hit their resident session — reusing its cached alias
// rows and advancing its RNG stream — while the bound keeps a server
// tracking millions of occasional users from holding a session for each.
type Manager struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[Key]*list.Element
	created uint64
	hits    uint64
	evicted uint64
	// drainedDraws / drainedReanchors accumulate the counters of sessions
	// that left the manager (evicted, or discarded after losing the
	// admission race), so Stats.Draws/Reanchors stay monotone instead of
	// dropping whenever the LRU sheds a busy session.
	drainedDraws     uint64
	drainedReanchors uint64
}

type managerItem struct {
	key  Key
	sess *Session
}

// NewManager returns a manager bounded to cap sessions (DefaultCap when
// cap <= 0).
func NewManager(cap int) *Manager {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Manager{
		cap:   cap,
		ll:    list.New(),
		items: map[Key]*list.Element{},
	}
}

// Get returns the resident session for key, if any, refreshing its
// recency. The report path probes it before doing any per-request
// preference evaluation or entry lookup: a warm user costs a map lookup,
// not an O(region) attribute pass.
func (m *Manager) Get(key Key) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.hits++
	return el.Value.(*managerItem).sess, true
}

// GetOrCreate returns the resident session for key, or builds one with mk
// and admits it. mk runs outside the manager lock (it may generate alias
// state or evaluate preferences); when two callers race on the same new
// key, the first admission wins and the loser's session is discarded, so
// every caller draws from one shared stream.
func (m *Manager) GetOrCreate(key Key, mk func() (*Session, error)) (*Session, error) {
	m.mu.Lock()
	if el, ok := m.items[key]; ok {
		m.ll.MoveToFront(el)
		m.hits++
		m.mu.Unlock()
		return el.Value.(*managerItem).sess, nil
	}
	m.mu.Unlock()

	sess, err := mk()
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		// Lost the admission race; the winner's stream is canonical. The
		// discarded loser has served nothing under the current contract
		// (mk just built it), so the drain is defensive — it keeps the
		// counter invariant ("every admitted-or-discarded session's counts
		// are reachable") true even if a future mk draws before admission.
		m.drainLocked(sess)
		m.ll.MoveToFront(el)
		m.hits++
		return el.Value.(*managerItem).sess, nil
	}
	m.created++
	el := m.ll.PushFront(&managerItem{key: key, sess: sess})
	m.items[key] = el
	for m.ll.Len() > m.cap {
		back := m.ll.Back()
		it := back.Value.(*managerItem)
		m.ll.Remove(back)
		delete(m.items, it.key)
		m.evicted++
		// Evicted sessions take their live counters with them; fold them
		// into the manager so /v1/stats draw totals never go backwards.
		m.drainLocked(it.sess)
	}
	return sess, nil
}

// drainLocked folds a departing session's counters into the manager.
// Caller holds m.mu.
func (m *Manager) drainLocked(s *Session) {
	m.drainedDraws += s.Draws()
	m.drainedReanchors += s.Reanchors()
}

// Len reports the resident session count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Stats snapshots the manager's counters. Draws and Reanchors cover every
// admitted session: resident sessions are summed live, departed sessions
// were drained into manager counters when they left.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Active:    m.ll.Len(),
		Cap:       m.cap,
		Created:   m.created,
		Hits:      m.hits,
		Evicted:   m.evicted,
		Draws:     m.drainedDraws,
		Reanchors: m.drainedReanchors,
	}
	for el := m.ll.Front(); el != nil; el = el.Next() {
		it := el.Value.(*managerItem)
		st.Draws += it.sess.Draws()
		st.Reanchors += it.sess.Reanchors()
	}
	return st
}
