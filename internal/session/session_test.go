package session

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
	"corgi/internal/policy"
)

// testWorld builds a height-2 tree and a synthetic stochastic forest entry
// over one privacy-level-2 subtree (49 leaves) — no LP involved, so tests
// stay fast while exercising the real tree geometry.
func testWorld(t *testing.T, privacyLevel int) (*loctree.Tree, *core.ForestEntry, *loctree.Priors) {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.LevelNodes(privacyLevel)[0]
	leaves := tree.LeavesUnder(root)
	n := len(leaves)
	rng := rand.New(rand.NewSource(17))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		total := 0.0
		for j := range rows[i] {
			rows[i][j] = 0.01 + rng.Float64()
			total += rows[i][j]
		}
		for j := range rows[i] {
			rows[i][j] /= total
		}
	}
	m, err := obf.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	entry := &core.ForestEntry{Root: root, Leaves: leaves, Matrix: m}
	return tree, entry, loctree.UniformPriors(tree)
}

// blockAttrs marks the given leaves with blocked=true and everything else
// blocked=false.
func blockAttrs(tree *loctree.Tree, blocked ...loctree.NodeID) map[loctree.NodeID]policy.Attributes {
	isBlocked := map[loctree.NodeID]bool{}
	for _, l := range blocked {
		isBlocked[l] = true
	}
	attrs := map[loctree.NodeID]policy.Attributes{}
	for _, l := range tree.LevelNodes(0) {
		attrs[l] = policy.Attributes{"blocked": policy.Bool(isBlocked[l])}
	}
	return attrs
}

func blockPolicy(privacy, precision int) policy.Policy {
	pred, _ := policy.ParsePredicate("blocked != true")
	return policy.Policy{
		PrivacyLevel:   privacy,
		PrecisionLevel: precision,
		Preferences:    []policy.Predicate{pred},
	}
}

// TestRowWeightsMatchMatrixPath is the core correctness property: the
// session's row-wise pruned/renormalized/precision-reduced distribution
// must equal what the full matrix algebra (obf.Prune + obf.PrecisionReduce)
// produces, for both leaf precision and a coarser level.
func TestRowWeightsMatchMatrixPath(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	blocked := []loctree.NodeID{entry.Leaves[3], entry.Leaves[11], entry.Leaves[30]}
	attrs := blockAttrs(tree, blocked...)

	for _, precision := range []int{0, 1} {
		pol := blockPolicy(2, precision)
		s, err := New(Config{
			Tree: tree, Entry: entry, Delta: len(blocked),
			Policy: pol, Attrs: attrs, Priors: priors, Seed: 1,
		})
		if err != nil {
			t.Fatalf("precision %d: %v", precision, err)
		}

		// Matrix-algebra reference: prune + renormalize, then reduce.
		var dropIdx []int
		for i, l := range entry.Leaves {
			for _, b := range blocked {
				if l == b {
					dropIdx = append(dropIdx, i)
				}
			}
		}
		pruned, keep, err := entry.Matrix.Prune(dropIdx)
		if err != nil {
			t.Fatal(err)
		}
		keptLeaves := make([]loctree.NodeID, len(keep))
		for ni, oi := range keep {
			keptLeaves[ni] = entry.Leaves[oi]
		}
		ref := pruned
		refNodes := keptLeaves
		if precision > 0 {
			groups, groupNodes, err := core.GroupByAncestor(tree, keptLeaves, precision)
			if err != nil {
				t.Fatal(err)
			}
			leafPriors := make([]float64, len(keptLeaves))
			for i, l := range keptLeaves {
				leafPriors[i] = priors.Of(tree, l)
			}
			ref, err = obf.PrecisionReduce(pruned, groups, leafPriors)
			if err != nil {
				t.Fatal(err)
			}
			refNodes = groupNodes
		}

		// Compare every row's alias distribution against the reference.
		realLeaf := entry.Leaves[0] // unpruned
		rowNode := realLeaf
		if precision > 0 {
			rowNode, _ = tree.AncestorAt(realLeaf, precision)
		}
		s.mu.Lock()
		row := s.rowIndex[rowNode]
		a, err := s.aliasForRowLocked(row, realLeaf)
		s.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.nodes) != len(refNodes) {
			t.Fatalf("precision %d: %d report nodes, reference has %d", precision, len(s.nodes), len(refNodes))
		}
		for j, node := range s.nodes {
			if node != refNodes[j] {
				t.Fatalf("precision %d: node order diverges at %d: %v vs %v", precision, j, node, refNodes[j])
			}
			want := ref.At(row, j)
			if got := a.Prob(j); math.Abs(got-want) > 1e-9 {
				t.Fatalf("precision %d: P(%d) = %v, matrix path says %v", precision, j, got, want)
			}
		}
	}
}

func TestBudgetEnforced(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	blocked := []loctree.NodeID{entry.Leaves[3], entry.Leaves[11]}
	attrs := blockAttrs(tree, blocked...)
	_, err := New(Config{
		Tree: tree, Entry: entry, Delta: 1, // budget below |S| = 2
		Policy: blockPolicy(2, 0), Attrs: attrs, Priors: priors,
	})
	if err == nil {
		t.Fatal("prune set beyond the reserved budget accepted")
	}
}

func TestOwnLocationPruned(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	real := entry.Leaves[5]
	attrs := blockAttrs(tree, real)
	s, err := New(Config{
		Tree: tree, Entry: entry, Delta: 1,
		Policy: blockPolicy(2, 0), Attrs: attrs, Priors: priors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DrawCell(real); err == nil {
		t.Fatal("drew a report for a leaf the user's own preferences pruned at precision 0")
	}
	// At coarser precision the ancestor row still exists.
	s2, err := New(Config{
		Tree: tree, Entry: entry, Delta: 1,
		Policy: blockPolicy(2, 1), Attrs: attrs, Priors: priors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.DrawCell(real); err != nil {
		t.Fatalf("precision-1 draw for a pruned leaf: %v", err)
	}
}

func TestDrawOutsideSubtree(t *testing.T) {
	tree, entry, priors := testWorld(t, 1) // privacy level 1: subtree is 7 leaves
	s, err := New(Config{
		Tree: tree, Entry: entry, Delta: 0,
		Policy: policy.Policy{PrivacyLevel: 1}, Priors: priors,
	})
	if err != nil {
		t.Fatal(err)
	}
	inSubtree := map[loctree.NodeID]bool{}
	for _, l := range entry.Leaves {
		inSubtree[l] = true
	}
	for _, l := range tree.LevelNodes(0) {
		if !inSubtree[l] {
			if _, err := s.DrawCell(l); err == nil {
				t.Fatal("drew for a cell outside the session subtree")
			}
			break
		}
	}
}

// TestDeterministicPerSeed: equal configs draw equal sequences; different
// seeds diverge.
func TestDeterministicPerSeed(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	mk := func(seed int64) []loctree.NodeID {
		s, err := New(Config{
			Tree: tree, Entry: entry, Delta: 0,
			Policy: policy.Policy{PrivacyLevel: 2}, Priors: priors, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.DrawCellN(entry.Leaves[0], 64)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw sequences")
	}
}

// TestConcurrentDraws exercises the mutex-serialized RNG and the lazy row
// builds under the race detector.
func TestConcurrentDraws(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	s, err := New(Config{
		Tree: tree, Entry: entry, Delta: 0,
		Policy: policy.Policy{PrivacyLevel: 2}, Priors: priors, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			leaf := entry.Leaves[g%len(entry.Leaves)]
			for i := 0; i < 500; i++ {
				if _, err := s.DrawCell(leaf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Draws(); got != 8*500 {
		t.Fatalf("draw counter = %d, want %d", got, 8*500)
	}
}

func TestPolicyFingerprint(t *testing.T) {
	a := blockPolicy(2, 0)
	b := blockPolicy(2, 0)
	if PolicyFingerprint(a) != PolicyFingerprint(b) {
		t.Fatal("identical policies fingerprint differently")
	}
	c := blockPolicy(2, 1)
	if PolicyFingerprint(a) == PolicyFingerprint(c) {
		t.Fatal("different policies share a fingerprint")
	}
}
