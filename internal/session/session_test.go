package session

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/obf"
	"corgi/internal/policy"
)

// testWorld builds a height-2 tree and a synthetic stochastic forest entry
// over one privacy-level-2 subtree (49 leaves) — no LP involved, so tests
// stay fast while exercising the real tree geometry.
func testWorld(t *testing.T, privacyLevel int) (*loctree.Tree, *core.ForestEntry, *loctree.Priors) {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.LevelNodes(privacyLevel)[0]
	leaves := tree.LeavesUnder(root)
	n := len(leaves)
	rng := rand.New(rand.NewSource(17))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		total := 0.0
		for j := range rows[i] {
			rows[i][j] = 0.01 + rng.Float64()
			total += rows[i][j]
		}
		for j := range rows[i] {
			rows[i][j] /= total
		}
	}
	m, err := obf.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	entry := &core.ForestEntry{Root: root, Leaves: leaves, Matrix: m}
	return tree, entry, loctree.UniformPriors(tree)
}

// blockAttrs marks the given leaves with blocked=true and everything else
// blocked=false.
func blockAttrs(tree *loctree.Tree, blocked ...loctree.NodeID) map[loctree.NodeID]policy.Attributes {
	isBlocked := map[loctree.NodeID]bool{}
	for _, l := range blocked {
		isBlocked[l] = true
	}
	attrs := map[loctree.NodeID]policy.Attributes{}
	for _, l := range tree.LevelNodes(0) {
		attrs[l] = policy.Attributes{"blocked": policy.Bool(isBlocked[l])}
	}
	return attrs
}

func blockPolicy(privacy, precision int) policy.Policy {
	pred, _ := policy.ParsePredicate("blocked != true")
	return policy.Policy{
		PrivacyLevel:   privacy,
		PrecisionLevel: precision,
		Preferences:    []policy.Predicate{pred},
	}
}

// TestRowWeightsMatchMatrixPath is the core correctness property: the
// session's row-wise pruned/renormalized/precision-reduced distribution
// must equal what the full matrix algebra (obf.Prune + obf.PrecisionReduce)
// produces, for both leaf precision and a coarser level.
func TestRowWeightsMatchMatrixPath(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	blocked := []loctree.NodeID{entry.Leaves[3], entry.Leaves[11], entry.Leaves[30]}
	attrs := blockAttrs(tree, blocked...)

	for _, precision := range []int{0, 1} {
		pol := blockPolicy(2, precision)
		s, err := New(Config{
			Tree: tree, Entry: entry, Delta: len(blocked),
			Policy: pol, Attrs: attrs, Priors: priors, Seed: 1,
		})
		if err != nil {
			t.Fatalf("precision %d: %v", precision, err)
		}

		// Matrix-algebra reference: prune + renormalize, then reduce.
		var dropIdx []int
		for i, l := range entry.Leaves {
			for _, b := range blocked {
				if l == b {
					dropIdx = append(dropIdx, i)
				}
			}
		}
		pruned, keep, err := entry.Matrix.Prune(dropIdx)
		if err != nil {
			t.Fatal(err)
		}
		keptLeaves := make([]loctree.NodeID, len(keep))
		for ni, oi := range keep {
			keptLeaves[ni] = entry.Leaves[oi]
		}
		ref := pruned
		refNodes := keptLeaves
		if precision > 0 {
			groups, groupNodes, err := mechanism.GroupByAncestor(tree, keptLeaves, precision)
			if err != nil {
				t.Fatal(err)
			}
			leafPriors := make([]float64, len(keptLeaves))
			for i, l := range keptLeaves {
				leafPriors[i] = priors.Of(tree, l)
			}
			ref, err = obf.PrecisionReduce(pruned, groups, leafPriors)
			if err != nil {
				t.Fatal(err)
			}
			refNodes = groupNodes
		}

		// Compare every row's alias distribution against the reference.
		realLeaf := entry.Leaves[0] // unpruned
		s.mu.Lock()
		row, err := s.b.RowFor(realLeaf)
		if err != nil {
			s.mu.Unlock()
			t.Fatal(err)
		}
		a, err := s.b.Alias(row)
		s.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		nodes := s.Nodes()
		if len(nodes) != len(refNodes) {
			t.Fatalf("precision %d: %d report nodes, reference has %d", precision, len(nodes), len(refNodes))
		}
		for j, node := range nodes {
			if node != refNodes[j] {
				t.Fatalf("precision %d: node order diverges at %d: %v vs %v", precision, j, node, refNodes[j])
			}
			want := ref.At(row, j)
			if got := a.Prob(j); math.Abs(got-want) > 1e-9 {
				t.Fatalf("precision %d: P(%d) = %v, matrix path says %v", precision, j, got, want)
			}
		}
	}
}

func TestBudgetEnforced(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	blocked := []loctree.NodeID{entry.Leaves[3], entry.Leaves[11]}
	attrs := blockAttrs(tree, blocked...)
	_, err := New(Config{
		Tree: tree, Entry: entry, Delta: 1, // budget below |S| = 2
		Policy: blockPolicy(2, 0), Attrs: attrs, Priors: priors,
	})
	if err == nil {
		t.Fatal("prune set beyond the reserved budget accepted")
	}
}

func TestOwnLocationPruned(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	real := entry.Leaves[5]
	attrs := blockAttrs(tree, real)
	s, err := New(Config{
		Tree: tree, Entry: entry, Delta: 1,
		Policy: blockPolicy(2, 0), Attrs: attrs, Priors: priors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DrawCell(real); err == nil {
		t.Fatal("drew a report for a leaf the user's own preferences pruned at precision 0")
	}
	// At coarser precision the ancestor row still exists.
	s2, err := New(Config{
		Tree: tree, Entry: entry, Delta: 1,
		Policy: blockPolicy(2, 1), Attrs: attrs, Priors: priors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.DrawCell(real); err != nil {
		t.Fatalf("precision-1 draw for a pruned leaf: %v", err)
	}
}

func TestDrawOutsideSubtree(t *testing.T) {
	tree, entry, priors := testWorld(t, 1) // privacy level 1: subtree is 7 leaves
	s, err := New(Config{
		Tree: tree, Entry: entry, Delta: 0,
		Policy: policy.Policy{PrivacyLevel: 1}, Priors: priors,
	})
	if err != nil {
		t.Fatal(err)
	}
	inSubtree := map[loctree.NodeID]bool{}
	for _, l := range entry.Leaves {
		inSubtree[l] = true
	}
	for _, l := range tree.LevelNodes(0) {
		if !inSubtree[l] {
			if _, err := s.DrawCell(l); err == nil {
				t.Fatal("drew for a cell outside the session subtree")
			}
			break
		}
	}
}

// TestDeterministicPerSeed: equal configs draw equal sequences; different
// seeds diverge.
func TestDeterministicPerSeed(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	mk := func(seed int64) []loctree.NodeID {
		s, err := New(Config{
			Tree: tree, Entry: entry, Delta: 0,
			Policy: policy.Policy{PrivacyLevel: 2}, Priors: priors, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.DrawCellN(entry.Leaves[0], 64)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw sequences")
	}
}

// TestConcurrentDraws exercises the mutex-serialized RNG and the lazy row
// builds under the race detector.
func TestConcurrentDraws(t *testing.T) {
	tree, entry, priors := testWorld(t, 2)
	s, err := New(Config{
		Tree: tree, Entry: entry, Delta: 0,
		Policy: policy.Policy{PrivacyLevel: 2}, Priors: priors, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			leaf := entry.Leaves[g%len(entry.Leaves)]
			for i := 0; i < 500; i++ {
				if _, err := s.DrawCell(leaf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Draws(); got != 8*500 {
		t.Fatalf("draw counter = %d, want %d", got, 8*500)
	}
}

func TestPolicyFingerprint(t *testing.T) {
	a := blockPolicy(2, 0)
	b := blockPolicy(2, 0)
	if PolicyFingerprint(a) != PolicyFingerprint(b) {
		t.Fatal("identical policies fingerprint differently")
	}
	c := blockPolicy(2, 1)
	if PolicyFingerprint(a) == PolicyFingerprint(c) {
		t.Fatal("different policies share a fingerprint")
	}
}

// synthEntryAt builds a synthetic row-stochastic forest entry over an
// arbitrary subtree root, mirroring testWorld's construction.
func synthEntryAt(t *testing.T, tree *loctree.Tree, root loctree.NodeID, seed int64) *core.ForestEntry {
	t.Helper()
	leaves := tree.LeavesUnder(root)
	n := len(leaves)
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		total := 0.0
		for j := range rows[i] {
			rows[i][j] = 0.01 + rng.Float64()
			total += rows[i][j]
		}
		for j := range rows[i] {
			rows[i][j] /= total
		}
	}
	m, err := obf.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return &core.ForestEntry{Root: root, Leaves: leaves, Matrix: m}
}

// TestRebindContinuesRNGStream is the mobility core: re-anchoring onto a
// new subtree swaps the binding but never resets the RNG, so a replayed
// move sequence is deterministic and the post-move draws continue the
// stream instead of restarting it from the seed.
func TestRebindContinuesRNGStream(t *testing.T) {
	tree, entryA, priors := testWorld(t, 1)
	rootB := tree.LevelNodes(1)[1]
	entryB := synthEntryAt(t, tree, rootB, 23)
	leafA, leafB := entryA.Leaves[0], entryB.Leaves[0]
	pol := policy.Policy{PrivacyLevel: 1}

	run := func() ([]loctree.NodeID, *Session) {
		s, err := New(Config{Tree: tree, Entry: entryA, Delta: 0, Policy: pol, Priors: priors, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		pre, err := s.DrawCellN(leafA, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Rebind(Rebind{Entry: entryB, Delta: 0}); err != nil {
			t.Fatal(err)
		}
		post, err := s.DrawCellN(leafB, 8)
		if err != nil {
			t.Fatal(err)
		}
		return append(pre, post...), s
	}
	seq1, s1 := run()
	seq2, _ := run()
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("replayed move sequence diverged at draw %d: %v vs %v", i, seq1[i], seq2[i])
		}
	}
	if got := s1.Reanchors(); got != 1 {
		t.Fatalf("reanchor counter = %d, want 1", got)
	}
	if s1.Root() != rootB || !s1.Covers(leafB) || s1.Covers(leafA) {
		t.Fatalf("binding not swapped: root %v", s1.Root())
	}

	// A fresh session started directly on entry B restarts the stream from
	// the seed; the rebound session must NOT match it — that would mean the
	// move reset the RNG.
	fresh, err := New(Config{Tree: tree, Entry: entryB, Delta: 0, Policy: pol, Priors: priors, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	freshDraws, err := fresh.DrawCellN(leafB, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 8; i++ {
		if seq1[8+i] != freshDraws[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("post-rebind draws match a seed-fresh session: the move reset the RNG stream")
	}
}

// TestRebindFailureKeepsOldBinding: a rebind whose prune set exceeds the
// new entry's budget must leave the session serving its old subtree.
func TestRebindFailureKeepsOldBinding(t *testing.T) {
	tree, entryA, priors := testWorld(t, 1)
	rootB := tree.LevelNodes(1)[1]
	entryB := synthEntryAt(t, tree, rootB, 23)
	s, err := New(Config{
		Tree: tree, Entry: entryA, Delta: 0,
		Policy: policy.Policy{PrivacyLevel: 1}, Priors: priors, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Rebind(Rebind{Entry: entryB, Delta: 0, Pruned: entryB.Leaves[:1]})
	if err == nil {
		t.Fatal("over-budget rebind accepted")
	}
	if s.Root() != entryA.Root || s.Reanchors() != 0 {
		t.Fatalf("failed rebind mutated the session: root %v, reanchors %d", s.Root(), s.Reanchors())
	}
	if _, err := s.DrawCell(entryA.Leaves[0]); err != nil {
		t.Fatalf("old binding unusable after failed rebind: %v", err)
	}
}

// TestConcurrentReanchorDraws races draws against rebinds: the race job's
// stress for the mobility path. Draws must always land on a consistent
// binding (old or new, never torn), and counters must add up.
func TestConcurrentReanchorDraws(t *testing.T) {
	tree, entryA, priors := testWorld(t, 1)
	entryB := synthEntryAt(t, tree, tree.LevelNodes(1)[1], 31)
	s, err := New(Config{
		Tree: tree, Entry: entryA, Delta: 0,
		Policy: policy.Policy{PrivacyLevel: 1}, Priors: priors, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		drawers = 6
		perG    = 300
		rebinds = 100
	)
	var wg sync.WaitGroup
	var drawn atomic.Uint64
	for g := 0; g < drawers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Try a cell of each subtree; exactly one belongs to the
				// live binding (the other returns the outside-subtree
				// error, which is the expected miss under racing rebinds).
				la := entryA.Leaves[(g+i)%len(entryA.Leaves)]
				lb := entryB.Leaves[(g+i)%len(entryB.Leaves)]
				okA, errA := s.DrawCell(la)
				okB, errB := s.DrawCell(lb)
				if errA == nil {
					drawn.Add(1)
					_ = okA
				}
				if errB == nil {
					drawn.Add(1)
					_ = okB
				}
				if errA != nil && errB != nil {
					t.Errorf("both subtrees rejected: %v / %v", errA, errB)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rebinds; i++ {
			entry := entryA
			if i%2 == 0 {
				entry = entryB
			}
			if err := s.Rebind(Rebind{Entry: entry, Delta: 0}); err != nil {
				t.Errorf("rebind %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if s.Reanchors() != rebinds {
		t.Fatalf("reanchors = %d, want %d", s.Reanchors(), rebinds)
	}
	if s.Draws() != drawn.Load() {
		t.Fatalf("draw counter %d, successful draws %d", s.Draws(), drawn.Load())
	}
}
