package obf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomStochastic returns a random n x n row-stochastic matrix.
func randomStochastic(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		sum := 0.0
		row := m.Row(i)
		for j := range row {
			row[j] = rng.Float64() + 1e-3
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return m
}

// expMechanism returns z[i][j] proportional to exp(-eps*d(i,j)) with d a
// metric on indices. Because row normalizers differ by at most a factor
// exp(eps*d(i,j)), the construction satisfies (2*eps)-Geo-Ind.
func expMechanism(n int, eps float64, d func(i, j int) float64) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		sum := 0.0
		for j := range row {
			row[j] = math.Exp(-eps * d(i, j))
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return m
}

// lineDist is |i-j| scaled — a metric over indices.
func lineDist(i, j int) float64 { return math.Abs(float64(i - j)) }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	if m.Dim() != 3 {
		t.Errorf("Dim = %d", m.Dim())
	}
	m.Set(1, 2, 0.5)
	if m.At(1, 2) != 0.5 {
		t.Error("Set/At roundtrip failed")
	}
	row := m.Row(1)
	row[0] = 0.25
	if m.At(1, 0) != 0.25 {
		t.Error("Row must be a live view")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone must be deep")
	}
}

func TestFromRows(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("empty rows must fail")
	}
	if _, err := FromRows([][]float64{{1, 0}, {1}}); err == nil {
		t.Error("ragged rows must fail")
	}
	m, err := FromRows([][]float64{{0.5, 0.5}, {0.25, 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckStochastic(1e-12); err != nil {
		t.Errorf("CheckStochastic: %v", err)
	}
}

func TestCheckStochastic(t *testing.T) {
	m, _ := FromRows([][]float64{{0.5, 0.5}, {0.6, 0.6}})
	if err := m.CheckStochastic(1e-9); err == nil {
		t.Error("bad row sum must fail")
	}
	m2, _ := FromRows([][]float64{{1.5, -0.5}, {0.5, 0.5}})
	if err := m2.CheckStochastic(1e-9); err == nil {
		t.Error("negative entry must fail")
	}
}

func TestNormalizeRows(t *testing.T) {
	m, _ := FromRows([][]float64{{2, 2}, {1e-12, 3}})
	if err := m.NormalizeRows(1e-9); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckStochastic(1e-12); err != nil {
		t.Errorf("after normalize: %v", err)
	}
	bad := NewMatrix(2)
	if err := bad.NormalizeRows(1e-9); err == nil {
		t.Error("zero rows must fail")
	}
	neg, _ := FromRows([][]float64{{-0.5, 1.5}, {0.5, 0.5}})
	if err := neg.NormalizeRows(1e-9); err == nil {
		t.Error("large negative must fail")
	}
	tiny, _ := FromRows([][]float64{{-1e-12, 1}, {0.5, 0.5}})
	if err := tiny.NormalizeRows(1e-9); err != nil {
		t.Errorf("tiny negative should clamp: %v", err)
	}
	if tiny.At(0, 0) != 0 {
		t.Error("tiny negative not clamped")
	}
}

func allPairs(n int) []Pair {
	var ps []Pair
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				ps = append(ps, Pair{I: i, J: j, Dist: lineDist(i, j)})
			}
		}
	}
	return ps
}

func TestCheckGeoIndOnExpMechanism(t *testing.T) {
	const eps = 1.2
	m := expMechanism(6, eps, lineDist)
	rep := m.CheckGeoInd(allPairs(6), 2*eps, 1e-9)
	if rep.Violated != 0 {
		t.Errorf("exp mechanism must satisfy 2eps-Geo-Ind, got %d violations (max excess %g)", rep.Violated, rep.MaxExcess)
	}
	if rep.Total != 30*6 {
		t.Errorf("Total = %d, want %d", rep.Total, 30*6)
	}
	if rep.Percent() != 0 {
		t.Errorf("Percent = %v", rep.Percent())
	}
	// With a much smaller budget the same matrix must violate.
	rep2 := m.CheckGeoInd(allPairs(6), eps/2, 1e-9)
	if rep2.Violated == 0 {
		t.Error("halved budget must produce violations")
	}
	if rep2.MaxExcess <= 0 {
		t.Error("MaxExcess must be positive when violations exist")
	}
}

func TestViolationReportPercent(t *testing.T) {
	if (ViolationReport{}).Percent() != 0 {
		t.Error("empty report must be 0%")
	}
	r := ViolationReport{Violated: 25, Total: 100}
	if r.Percent() != 25 {
		t.Errorf("Percent = %v", r.Percent())
	}
}

func TestPruneValidation(t *testing.T) {
	m := randomStochastic(5, rand.New(rand.NewSource(1)))
	if _, _, err := m.Prune([]int{5}); err == nil {
		t.Error("out-of-range index must fail")
	}
	if _, _, err := m.Prune([]int{1, 1}); err == nil {
		t.Error("duplicate index must fail")
	}
	if _, _, err := m.Prune([]int{0, 1, 2, 3, 4}); err == nil {
		t.Error("pruning everything must fail")
	}
}

func TestPrunePreservesUnitMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64, rawN uint8, rawK uint8) bool {
		n := 3 + int(rawN%8)
		k := 1 + int(rawK)%(n-1)
		r := rand.New(rand.NewSource(seed))
		m := randomStochastic(n, r)
		s := r.Perm(n)[:k]
		pruned, keep, err := m.Prune(s)
		if err != nil {
			return true // mass-loss rejection is legitimate
		}
		if pruned.Dim() != n-k || len(keep) != n-k {
			return false
		}
		return pruned.CheckStochastic(1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPruneKeepMapping(t *testing.T) {
	m := randomStochastic(5, rand.New(rand.NewSource(3)))
	pruned, keep, err := m.Prune([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	wantKeep := []int{0, 2, 4}
	for i, k := range keep {
		if k != wantKeep[i] {
			t.Fatalf("keep = %v, want %v", keep, wantKeep)
		}
	}
	// Check one entry against the formula: z'[i][j] = z[ki][kj] / (1 - sum_S z[ki][l]).
	removed := m.At(2, 1) + m.At(2, 3)
	want := m.At(2, 4) / (1 - removed)
	if math.Abs(pruned.At(1, 2)-want) > 1e-12 {
		t.Errorf("pruned entry = %v, want %v", pruned.At(1, 2), want)
	}
}

func TestPruneRejectsMassLoss(t *testing.T) {
	// Row 0 puts all its mass on column 1; pruning column 1 must fail.
	m, _ := FromRows([][]float64{
		{0, 1, 0},
		{0.3, 0.4, 0.3},
		{0.2, 0.2, 0.6},
	})
	if _, _, err := m.Prune([]int{1}); err == nil {
		t.Error("pruning a row's entire mass must fail")
	}
}

func TestPrecisionReduceValidation(t *testing.T) {
	m := randomStochastic(4, rand.New(rand.NewSource(4)))
	priors := []float64{0.25, 0.25, 0.25, 0.25}
	if _, err := PrecisionReduce(m, [][]int{{0, 1}, {2, 3}}, priors[:3]); err == nil {
		t.Error("prior length mismatch must fail")
	}
	if _, err := PrecisionReduce(m, [][]int{{0, 1}, {2}}, priors); err == nil {
		t.Error("uncovered leaf must fail")
	}
	if _, err := PrecisionReduce(m, [][]int{{0, 1}, {1, 2, 3}}, priors); err == nil {
		t.Error("overlapping groups must fail")
	}
	if _, err := PrecisionReduce(m, [][]int{{0, 1}, {}, {2, 3}}, priors); err == nil {
		t.Error("empty group must fail")
	}
	if _, err := PrecisionReduce(m, [][]int{{0, 5}, {1, 2, 3}}, priors); err == nil {
		t.Error("out-of-range leaf must fail")
	}
	if _, err := PrecisionReduce(m, [][]int{{0, 1}, {2, 3}}, []float64{0, 0, 0.5, 0.5}); err == nil {
		t.Error("zero-mass group must fail")
	}
	if _, err := PrecisionReduce(m, [][]int{{0, 1}, {2, 3}}, []float64{-0.1, 0.6, 0.25, 0.25}); err == nil {
		t.Error("negative prior must fail")
	}
}

func TestPrecisionReducePreservesStochastic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(6)
		m := randomStochastic(n, r)
		priors := make([]float64, n)
		for i := range priors {
			priors[i] = r.Float64() + 0.01
		}
		// Random partition into 2-3 groups.
		ng := 2 + r.Intn(2)
		groups := make([][]int, ng)
		for i := 0; i < n; i++ {
			g := r.Intn(ng)
			groups[g] = append(groups[g], i)
		}
		for _, g := range groups {
			if len(g) == 0 {
				return true // skip degenerate partition
			}
		}
		red, err := PrecisionReduce(m, groups, priors)
		if err != nil {
			return false
		}
		return red.CheckStochastic(1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrecisionReducePreservesGeoInd(t *testing.T) {
	// Proposition 4.6: if Z0 satisfies z[u][w] <= e^{eps*d}z[v][w] for all
	// u,v,w (uniform-budget form used in the proof), the reduced matrix
	// satisfies the same bound for every group pair.
	const eps = 0.8
	n := 8
	m := expMechanism(n, eps, lineDist)
	priors := make([]float64, n)
	for i := range priors {
		priors[i] = 1.0 / float64(n)
	}
	groups := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	red, err := PrecisionReduce(m, groups, priors)
	if err != nil {
		t.Fatal(err)
	}
	// Bound for the proof's uniform form: max pair distance across groups.
	for i := range groups {
		for j := range groups {
			if i == j {
				continue
			}
			// d(group_i, group_j) in the proof uses the worst leaf pair.
			dmax := 0.0
			for _, u := range groups[i] {
				for _, v := range groups[j] {
					if d := lineDist(u, v); d > dmax {
						dmax = d
					}
				}
			}
			bound := math.Exp(2 * eps * dmax)
			for k := 0; k < red.Dim(); k++ {
				if red.At(i, k) > bound*red.At(j, k)+1e-9 {
					t.Fatalf("group pair (%d,%d) col %d violates reduced Geo-Ind", i, j, k)
				}
			}
		}
	}
}

func TestPrecisionReduceBayesFormula(t *testing.T) {
	// Hand-checked 4x4 -> 2x2 example.
	m, _ := FromRows([][]float64{
		{0.4, 0.2, 0.3, 0.1},
		{0.1, 0.5, 0.2, 0.2},
		{0.3, 0.3, 0.2, 0.2},
		{0.0, 0.2, 0.4, 0.4},
	})
	priors := []float64{0.1, 0.3, 0.2, 0.4}
	red, err := PrecisionReduce(m, [][]int{{0, 1}, {2, 3}}, priors)
	if err != nil {
		t.Fatal(err)
	}
	// z[0][0] = (0.1*(0.4+0.2) + 0.3*(0.1+0.5)) / 0.4 = (0.06+0.18)/0.4 = 0.6
	if math.Abs(red.At(0, 0)-0.6) > 1e-12 {
		t.Errorf("z[0][0] = %v, want 0.6", red.At(0, 0))
	}
	// z[1][1] = (0.2*(0.2+0.2) + 0.4*(0.4+0.4)) / 0.6 = (0.08+0.32)/0.6 = 2/3
	if math.Abs(red.At(1, 1)-2.0/3) > 1e-12 {
		t.Errorf("z[1][1] = %v, want 2/3", red.At(1, 1))
	}
	if err := red.CheckStochastic(1e-12); err != nil {
		t.Errorf("reduced not stochastic: %v", err)
	}
}

func TestUniformIdentity(t *testing.T) {
	u := Uniform(4)
	if err := u.CheckStochastic(1e-12); err != nil {
		t.Errorf("uniform: %v", err)
	}
	rep := u.CheckGeoInd(allPairs(4), 0.0001, 1e-12)
	if rep.Violated != 0 {
		t.Error("uniform matrix satisfies any Geo-Ind budget")
	}
	id := Identity(4)
	if err := id.CheckStochastic(1e-12); err != nil {
		t.Errorf("identity: %v", err)
	}
	rep2 := id.CheckGeoInd(allPairs(4), 1, 1e-9)
	if rep2.Violated == 0 {
		t.Error("identity matrix must violate Geo-Ind")
	}
}
