// Package obf implements the obfuscation-matrix algebra of the paper: the
// row-stochastic matrix representation (Sec. 2.1), epsilon-Geo-Ind
// constraint checking (Equ. 4), user-side matrix pruning (Sec. 4.3), and
// matrix precision reduction (Sec. 4.5, Algorithm 2). It is deliberately
// independent of how matrices are generated; internal/core builds
// matrices, this package transforms and audits them.
//
// Sampling lives elsewhere: internal/mechanism resolves a (source, policy)
// pair to customized rows, and internal/sample draws from them in O(1) via
// alias tables. The matrices here are safe to read concurrently.
package obf

import (
	"fmt"
	"math"
)

// Matrix is a square row-stochastic obfuscation matrix Z: entry (i, j) is
// the probability of reporting location j when the true location is i.
type Matrix struct {
	n int
	z []float64 // row-major
}

// NewMatrix returns an n x n zero matrix.
func NewMatrix(n int) *Matrix {
	if n < 1 {
		panic("obf: matrix dimension must be positive")
	}
	return &Matrix{n: n, z: make([]float64, n*n)}
}

// FromRows builds a matrix from row slices, which must form a square.
func FromRows(rows [][]float64) (*Matrix, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("obf: no rows")
	}
	m := NewMatrix(n)
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("obf: row %d has %d entries, want %d", i, len(r), n)
		}
		copy(m.z[i*n:(i+1)*n], r)
	}
	return m, nil
}

// Dim returns the matrix dimension.
func (m *Matrix) Dim() int { return m.n }

// At returns entry (i, j).
func (m *Matrix) At(i, j int) float64 { return m.z[i*m.n+j] }

// Set writes entry (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.z[i*m.n+j] = v }

// Row returns row i as a live slice (mutations write through).
func (m *Matrix) Row(i int) []float64 { return m.z[i*m.n : (i+1)*m.n] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.n)
	copy(out.z, m.z)
	return out
}

// CheckStochastic verifies the probability unit measure (Equ. 1): every
// entry >= -tol and every row sums to 1 within n*tol.
func (m *Matrix) CheckStochastic(tol float64) error {
	for i := 0; i < m.n; i++ {
		sum := 0.0
		for j := 0; j < m.n; j++ {
			v := m.At(i, j)
			if v < -tol {
				return fmt.Errorf("obf: negative entry z[%d][%d] = %v", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > float64(m.n)*tol {
			return fmt.Errorf("obf: row %d sums to %v", i, sum)
		}
	}
	return nil
}

// NormalizeRows rescales each row to sum exactly 1, clamping tiny negative
// entries (|v| <= tol) to zero first. It returns an error if a row has no
// positive mass.
func (m *Matrix) NormalizeRows(tol float64) error {
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		sum := 0.0
		for j, v := range row {
			if v < 0 {
				if v < -tol {
					return fmt.Errorf("obf: row %d entry %d is %v (beyond tolerance)", i, j, v)
				}
				row[j] = 0
				v = 0
			}
			sum += v
		}
		if sum <= 0 {
			return fmt.Errorf("obf: row %d has no probability mass", i)
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
	return nil
}

// Pair is an ordered location pair with its distance, identifying one
// family of Geo-Ind constraints: z[I][k] <= exp(eps*Dist)*z[J][k] for all k.
type Pair struct {
	I, J int
	Dist float64
}

// ViolationReport summarises a Geo-Ind audit.
type ViolationReport struct {
	Violated  int     // constraints breached beyond tol
	Total     int     // constraints checked (len(pairs) * n)
	MaxExcess float64 // worst absolute breach z_ik - e^{eps d} z_jk
}

// Percent returns the violation percentage (0 when nothing was checked).
func (r ViolationReport) Percent() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Violated) / float64(r.Total)
}

// CheckGeoInd audits z[i][k] - exp(eps*d_ij)*z[j][k] <= tol over the given
// ordered pairs and all columns k. This is the paper's violation metric
// (Sec. 6.2.4): the same pair set used to generate a matrix is used to
// audit it after customization.
func (m *Matrix) CheckGeoInd(pairs []Pair, eps, tol float64) ViolationReport {
	rep := ViolationReport{Total: len(pairs) * m.n}
	for _, p := range pairs {
		bound := math.Exp(eps * p.Dist)
		ri, rj := m.Row(p.I), m.Row(p.J)
		for k := 0; k < m.n; k++ {
			excess := ri[k] - bound*rj[k]
			if excess > tol {
				rep.Violated++
				if excess > rep.MaxExcess {
					rep.MaxExcess = excess
				}
			}
		}
	}
	return rep
}

// Prune implements the paper's matrix pruning (Sec. 4.3): remove the rows
// and columns in S, then rescale each remaining row i by
// 1/(1 - sum_{l in S} z[i][l]) so the unit measure holds again. It returns
// the pruned matrix and keep, the original indices of the surviving rows in
// order. Rows that would lose at least 1-minMass of their probability mass
// make the rescaling unstable; Prune rejects them (minMass = 1e-9).
func (m *Matrix) Prune(s []int) (*Matrix, []int, error) {
	const minMass = 1e-9
	drop := make([]bool, m.n)
	for _, idx := range s {
		if idx < 0 || idx >= m.n {
			return nil, nil, fmt.Errorf("obf: prune index %d out of range [0,%d)", idx, m.n)
		}
		if drop[idx] {
			return nil, nil, fmt.Errorf("obf: duplicate prune index %d", idx)
		}
		drop[idx] = true
	}
	keep := make([]int, 0, m.n-len(s))
	for i := 0; i < m.n; i++ {
		if !drop[i] {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return nil, nil, fmt.Errorf("obf: pruning all %d locations", m.n)
	}
	out := NewMatrix(len(keep))
	for ni, oi := range keep {
		row := m.Row(oi)
		removed := 0.0
		for l, isDropped := range drop {
			if isDropped {
				removed += row[l]
			}
		}
		mass := 1 - removed
		if mass < minMass {
			return nil, nil, fmt.Errorf("obf: row %d retains %.3g probability mass after pruning", oi, mass)
		}
		inv := 1 / mass
		for nj, oj := range keep {
			out.Set(ni, nj, row[oj]*inv)
		}
	}
	return out, keep, nil
}

// PrecisionReduce implements Algorithm 2 / Equ. (17): given the leaf-level
// matrix Z0, the partition of leaf indices into coarse nodes (groups), and
// the leaf priors, it returns the coarse-level matrix
//
//	Zl[i][j] = sum_{u in groups[i]} p_u * sum_{v in groups[j]} Z0[u][v] / p_i
//
// where p_i = sum_{u in groups[i]} p_u. Proposition 4.6: the result remains
// row-stochastic and preserves epsilon-Geo-Ind.
func PrecisionReduce(m *Matrix, groups [][]int, leafPriors []float64) (*Matrix, error) {
	if len(leafPriors) != m.n {
		return nil, fmt.Errorf("obf: %d priors for a %d-dim matrix", len(leafPriors), m.n)
	}
	seen := make([]bool, m.n)
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("obf: group %d is empty", gi)
		}
		for _, u := range g {
			if u < 0 || u >= m.n {
				return nil, fmt.Errorf("obf: group %d contains out-of-range leaf %d", gi, u)
			}
			if seen[u] {
				return nil, fmt.Errorf("obf: leaf %d appears in two groups", u)
			}
			seen[u] = true
		}
	}
	for u, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("obf: leaf %d not covered by any group", u)
		}
	}
	ng := len(groups)
	out := NewMatrix(ng)
	for i, gi := range groups {
		pi := 0.0
		for _, u := range gi {
			if leafPriors[u] < 0 {
				return nil, fmt.Errorf("obf: negative prior at leaf %d", u)
			}
			pi += leafPriors[u]
		}
		if pi <= 0 {
			return nil, fmt.Errorf("obf: group %d has zero prior mass", i)
		}
		for j, gj := range groups {
			num := 0.0
			for _, u := range gi {
				rowSum := 0.0
				row := m.Row(u)
				for _, v := range gj {
					rowSum += row[v]
				}
				num += leafPriors[u] * rowSum
			}
			out.Set(i, j, num/pi)
		}
	}
	return out, nil
}

// Uniform returns the maximally private n x n matrix (every row uniform).
func Uniform(n int) *Matrix {
	m := NewMatrix(n)
	v := 1 / float64(n)
	for i := range m.z {
		m.z[i] = v
	}
	return m
}

// Identity returns the zero-privacy matrix (report the true location).
func Identity(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
