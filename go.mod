module corgi

go 1.22
