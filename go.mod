module corgi

go 1.24.0
